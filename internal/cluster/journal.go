package cluster

// Rollout journaling: the coordinator's crash-recovery log. A rollout
// epoch walks a strict phase ladder (prepare → validate → commit →
// committed, or → aborted), and before entering each phase the
// coordinator makes the *intent* durable — a small JSON state file
// written atomically, naming the epoch, the agreed target fingerprint,
// and each node's payload kind. A coordinator that dies mid-epoch
// leaves behind exactly one of:
//
//	prepare/validate — nothing has been published anywhere. Resume
//	                   aborts: every side buffer is dropped and the
//	                   epoch is marked aborted. Safe because commit was
//	                   never journaled, so no node can have published.
//	commit           — some nodes may have published. Resume rolls the
//	                   epoch FORWARD by re-running a full rollout of
//	                   the journaled target corpus: re-preparing a node
//	                   that already committed is idempotent, so the
//	                   fleet converges on the target either way.
//	committed/aborted — the epoch finished; resume does nothing.
//
// Alongside the state file the journal keeps three corpus files:
// epoch.corpus (the in-flight target, written before the prepare
// record so a commit-phase resume can re-ship it), committed.corpus
// (the last committed target — the delta base for the next epoch and
// the anti-entropy repair source), and prev.corpus (the previously
// committed corpus, rotated on commit — the delta base for repairing a
// node that missed exactly one epoch). Corpus files are rotated by
// rename *before* the committed record is written: if the coordinator
// dies between the two, the state file still says commit and resume
// rolls forward onto the already-rotated committed.corpus.
//
// The faultinject stage cluster.journal fires inside record, keyed by
// the phase about to become durable, and it fires on the Rollout
// goroutine itself — a KindPanic rule is therefore a faithful
// simulation of the coordinator dying at that exact point in the
// protocol, which is how the chaos suite drives journal recovery.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"hoiho/internal/atomicfile"
	"hoiho/internal/faultinject"
)

// Journal phase values, in protocol order.
const (
	phasePrepare   = "prepare"
	phaseValidate  = "validate"
	phaseCommit    = "commit"
	phaseCommitted = "committed"
	phaseAborted   = "aborted"
)

// journalState is the durable record of one rollout epoch's progress.
type journalState struct {
	// Epoch is the rollout epoch this record belongs to.
	Epoch uint64 `json:"epoch"`
	// TargetFP is the fingerprint the epoch is driving toward: the
	// coordinator's own fingerprint of the target corpus until prepare
	// acks agree, the cluster-agreed fingerprint from then on.
	TargetFP string `json:"target_fingerprint,omitempty"`
	// Phase is the protocol phase this record makes durable — the phase
	// about to run, not the one that finished.
	Phase string `json:"phase"`
	// Nodes are the members pinned at epoch start and the payload kind
	// each was planned to receive.
	Nodes []journalNode `json:"nodes,omitempty"`
	// UpdatedAt is when this record was written.
	UpdatedAt time.Time `json:"updated_at"`
}

// journalNode is one member's entry in the epoch manifest.
type journalNode struct {
	Node string `json:"node"`
	// Delta records that the node was planned to receive the HBD patch
	// rather than the full corpus.
	Delta bool `json:"delta,omitempty"`
}

// validPhase guards loads: a state file naming an unknown phase is
// corrupt, and resume must fail loudly rather than guess.
func validPhase(p string) bool {
	switch p {
	case phasePrepare, phaseValidate, phaseCommit, phaseCommitted, phaseAborted:
		return true
	}
	return false
}

// journal is the on-disk rollout log: one state file plus the corpus
// rotation. All writes go through atomicfile, so a torn write is
// impossible and a reader sees either the old record or the new one.
type journal struct {
	dir string
}

// openJournal creates the journal directory if needed.
func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: journal dir %s: %w", dir, err)
	}
	return &journal{dir: dir}, nil
}

func (j *journal) statePath() string     { return filepath.Join(j.dir, "state.json") }
func (j *journal) epochPath() string     { return filepath.Join(j.dir, "epoch.corpus") }
func (j *journal) committedPath() string { return filepath.Join(j.dir, "committed.corpus") }
func (j *journal) prevPath() string      { return filepath.Join(j.dir, "prev.corpus") }

// load reads the last durable state, or (nil, nil) when no epoch has
// ever been journaled.
func (j *journal) load() (*journalState, error) {
	data, err := os.ReadFile(j.statePath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: journal read: %w", err)
	}
	var st journalState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("cluster: journal %s is corrupt: %w", j.statePath(), err)
	}
	if !validPhase(st.Phase) {
		return nil, fmt.Errorf("cluster: journal %s names unknown phase %q", j.statePath(), st.Phase)
	}
	return &st, nil
}

// record makes st durable. The faultinject stage fires first — keyed by
// the phase being recorded, on the caller's goroutine — so injected
// panics model the coordinator dying before the record lands.
func (j *journal) record(ctx context.Context, st *journalState) error {
	if err := faultinject.Fire(ctx, faultinject.StageClusterJournal, st.Phase); err != nil {
		return fmt.Errorf("cluster: journal %s record: %w", st.Phase, err)
	}
	st.UpdatedAt = time.Now()
	err := atomicfile.WriteFile(j.statePath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	})
	if err != nil {
		return fmt.Errorf("cluster: journal %s record: %w", st.Phase, err)
	}
	return nil
}

// writeEpochCorpus persists the in-flight target before the prepare
// record, so a commit-phase resume always has the bytes to re-ship.
func (j *journal) writeEpochCorpus(data []byte) error {
	err := atomicfile.WriteFile(j.epochPath(), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return fmt.Errorf("cluster: journal epoch corpus: %w", err)
	}
	return nil
}

// readCorpus returns a journal corpus file, or (nil, nil) when absent.
func (j *journal) readCorpus(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: journal corpus %s: %w", path, err)
	}
	return data, nil
}

func (j *journal) readEpochCorpus() ([]byte, error) { return j.readCorpus(j.epochPath()) }
func (j *journal) readCommitted() ([]byte, error)   { return j.readCorpus(j.committedPath()) }
func (j *journal) readPrev() ([]byte, error)        { return j.readCorpus(j.prevPath()) }

// promoteEpoch rotates the corpus files on commit: the old committed
// corpus becomes prev (the one-epoch-stale delta base) and the epoch's
// target becomes committed. Renames within one directory, so each step
// is atomic.
func (j *journal) promoteEpoch() error {
	if _, err := os.Stat(j.committedPath()); err == nil {
		if err := os.Rename(j.committedPath(), j.prevPath()); err != nil {
			return fmt.Errorf("cluster: journal rotate committed corpus: %w", err)
		}
	}
	if err := os.Rename(j.epochPath(), j.committedPath()); err != nil {
		return fmt.Errorf("cluster: journal promote epoch corpus: %w", err)
	}
	return nil
}

// Resume inspects the journal left behind by a previous coordinator
// process and finishes whatever epoch it died inside: nothing when the
// last epoch completed, a clean abort when the crash predates the
// commit record (no node can have published), and a roll-forward
// re-rollout of the journaled target when the crash was inside commit
// (some nodes may have published; converging everyone onto the target
// is the only repair that never rolls a live generation backwards).
// Call it after Start, before accepting operator traffic.
func (rt *Router) Resume(ctx context.Context) error {
	if rt.journal == nil {
		return nil
	}
	st, err := rt.journal.load()
	if err != nil {
		return err
	}
	if st == nil || st.Phase == phaseCommitted || st.Phase == phaseAborted {
		return nil
	}
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	switch st.Phase {
	case phasePrepare, phaseValidate:
		v := rt.view.Load()
		for _, m := range v.members {
			rt.abortNode(ctx, m)
		}
		rt.stats.aborted.Add(1)
		if err := rt.journal.record(ctx, &journalState{
			Epoch: st.Epoch, TargetFP: st.TargetFP, Phase: phaseAborted, Nodes: st.Nodes,
		}); err != nil {
			return err
		}
		rt.logf("resume: epoch %d crashed in %s; aborted cleanly", st.Epoch, st.Phase)
		return nil
	default: // phaseCommit
		data, err := rt.journal.readEpochCorpus()
		if err != nil {
			return err
		}
		if data == nil {
			// The crash landed between the corpus rotation and the
			// committed record: the target already sits at
			// committed.corpus.
			if data, err = rt.journal.readCommitted(); err != nil {
				return err
			}
		}
		if data == nil {
			return fmt.Errorf("cluster: resume: epoch %d journaled a commit but no target corpus survives", st.Epoch)
		}
		rt.logf("resume: epoch %d crashed in commit; rolling forward to %s", st.Epoch, st.TargetFP)
		if _, err := rt.rolloutLocked(ctx, data, 0); err != nil {
			return fmt.Errorf("cluster: resume: roll-forward of epoch %d: %w", st.Epoch, err)
		}
		return nil
	}
}
