package cluster

// Two-phase corpus rollout, coordinator side. The invariant the
// protocol buys: within one rollout epoch, no client ever observes a
// generation that was not committed cluster-wide. The coordinator
// drives every node of the current view through three rounds:
//
//	prepare  — ship the corpus bytes to every node's side buffer. Each
//	           ack carries the prepared fingerprint (X-Hoiho-Corpus)
//	           and the serving generation it would supersede
//	           (X-Hoiho-Generation). All prepared fingerprints must
//	           agree — the first ack is the reference, because nodes
//	           running a -classes filter fingerprint the retained
//	           subset, which the coordinator cannot precompute.
//	validate — every node re-acks the same fingerprint and an unmoved
//	           serving generation. A node that lost its side buffer,
//	           reloaded mid-epoch, or died since prepare nacks here.
//	commit   — every node publishes, pinned to the agreed fingerprint.
//
// Any nack or timeout in prepare/validate aborts the epoch: every side
// buffer is dropped and serving state is untouched. A partial commit —
// the one window where some nodes have published — is repaired by
// rolling the committed nodes back through the nodes' existing
// /-/rollback path, restoring the pre-epoch corpus everywhere.
//
// The protocol is strictly one epoch at a time (adminMu), and the
// member set is pinned to the view loaded at epoch start, so a
// concurrent join/leave cannot split a phase across two rings.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hoiho/internal/corpusbin"
	"hoiho/internal/extract"
	"hoiho/internal/faultinject"
)

// maxRolloutBodyBytes caps a corpus accepted by POST /-/rollout,
// matching the node-side prepare cap.
const maxRolloutBodyBytes = 64 << 20

// RolloutResult reports a committed epoch: the cluster-wide fingerprint
// and each node's new serving generation.
type RolloutResult struct {
	Fingerprint string       `json:"fingerprint"`
	Nodes       []NodeCommit `json:"nodes"`
}

// NodeCommit is one node's post-commit identity.
type NodeCommit struct {
	Node       string `json:"node"`
	Generation uint64 `json:"generation"`
}

// phaseAck is one node's answer to one rollout phase.
type phaseAck struct {
	node string
	fp   string
	gen  uint64
	err  error
}

// Rollout drives one two-phase corpus swap across the whole cluster.
// data is the corpus to ship (HBC or JSON — nodes sniff). holdValidate,
// when positive, pauses between prepare and validate; it exists so
// chaos tests and the CI smoke script can widen the window in which to
// kill a node mid-epoch. On any failure the epoch is aborted (committed
// nodes rolled back) and the returned RolloutError names the phase and
// node that broke it.
func (rt *Router) Rollout(ctx context.Context, data []byte, holdValidate time.Duration) (*RolloutResult, error) {
	if !rt.adminMu.TryLock() {
		return nil, ErrRolloutInProgress
	}
	defer rt.adminMu.Unlock()
	return rt.rolloutLocked(ctx, data, holdValidate)
}

// rolloutLocked is the epoch body, factored out so journal resume can
// roll forward while already holding adminMu.
func (rt *Router) rolloutLocked(ctx context.Context, data []byte, holdValidate time.Duration) (*RolloutResult, error) {
	v := rt.view.Load()
	members := v.members
	if len(members) == 0 {
		return nil, ErrNoMembers
	}

	plan, err := rt.planEpoch(ctx, members, data)
	if err != nil {
		return nil, err
	}
	if err := rt.journalPhase(ctx, plan, phasePrepare, ""); err != nil {
		return nil, err
	}
	epochQ := "epoch=" + strconv.FormatUint(plan.epoch, 10)

	// Phase 1: prepare. Ship each node its planned payload — the HBD
	// patch when the node's live fingerprint matched the delta base at
	// planning time, the full corpus otherwise. A node that nacks its
	// delta with a base mismatch (it diverged between planning and
	// prepare, or its filter makes its fingerprint incomparable) is
	// retried immediately with the full corpus; only a full-corpus
	// failure aborts the epoch. All prepared fingerprints must agree.
	preps := rt.phaseFanout(ctx, "prepare", members, func(pctx context.Context, m *member) (string, uint64, error) {
		body := plan.full
		if plan.useDelta[m.name] {
			body = plan.delta
		}
		fp, gen, err := rt.rolloutPost(pctx, "prepare", m, "/-/rollout/prepare", epochQ, body)
		if err != nil && plan.useDelta[m.name] && errors.Is(err, ErrBaseMismatchNack) {
			rt.logf("rollout: %s nacked the delta base; resending the full corpus", m.name)
			return rt.rolloutPost(pctx, "prepare", m, "/-/rollout/prepare", epochQ, plan.full)
		}
		return fp, gen, err
	})
	var fp string
	for _, a := range preps {
		if a.err != nil {
			rt.abortEpochJournaled(ctx, plan, members, "prepare", a.node, a.err)
			return nil, &RolloutError{Phase: "prepare", Node: a.node, Err: a.err}
		}
		if fp == "" {
			fp = a.fp
		} else if a.fp != fp {
			err := fmt.Errorf("cluster: prepared fingerprint %s disagrees with reference %s (mismatched corpus or class filters across nodes)", a.fp, fp)
			rt.abortEpochJournaled(ctx, plan, members, "prepare", a.node, err)
			return nil, &RolloutError{Phase: "prepare", Node: a.node, Err: err}
		}
	}
	if err := rt.journalPhase(ctx, plan, phaseValidate, fp); err != nil {
		rt.abortEpochJournaled(ctx, plan, members, "prepare", "", err)
		return nil, &RolloutError{Phase: "prepare", Err: err}
	}

	// Optional hold between phases (chaos/test hook), bounded by ctx.
	if holdValidate > 0 {
		t := time.NewTimer(holdValidate)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			rt.abortEpochJournaled(ctx, plan, members, "validate", "", ctx.Err())
			return nil, &RolloutError{Phase: "validate", Err: ctx.Err()}
		}
	}

	// Phase 2: validate. Every node must still hold the agreed corpus
	// over the generation it acked at prepare.
	vals := rt.phaseFanout(ctx, "validate", members, func(pctx context.Context, m *member) (string, uint64, error) {
		return rt.rolloutPost(pctx, "validate", m, "/-/rollout/validate", "", nil)
	})
	for i, a := range vals {
		err := a.err
		if err == nil && a.fp != fp {
			err = fmt.Errorf("cluster: validate acked fingerprint %s, epoch agreed on %s", a.fp, fp)
		}
		if err == nil && a.gen != preps[i].gen {
			err = fmt.Errorf("cluster: serving generation moved from %d to %d during the epoch", preps[i].gen, a.gen)
		}
		if err != nil {
			rt.abortEpochJournaled(ctx, plan, members, "validate", a.node, err)
			return nil, &RolloutError{Phase: "validate", Node: a.node, Err: err}
		}
	}
	if err := rt.journalPhase(ctx, plan, phaseCommit, fp); err != nil {
		rt.abortEpochJournaled(ctx, plan, members, "validate", "", err)
		return nil, &RolloutError{Phase: "validate", Err: err}
	}

	// Phase 3: commit, pinned to the agreed fingerprint. A partial
	// commit is repaired: committed nodes roll back, the rest abort.
	coms := rt.phaseFanout(ctx, "commit", members, func(pctx context.Context, m *member) (string, uint64, error) {
		return rt.rolloutPost(pctx, "commit", m, "/-/rollout/commit", "fingerprint="+fp, nil)
	})
	var commitErr *RolloutError
	for _, a := range coms {
		if a.err != nil {
			commitErr = &RolloutError{Phase: "commit", Node: a.node, Err: a.err}
			break
		}
	}
	if commitErr != nil {
		for i, a := range coms {
			m := members[i]
			if a.err == nil {
				if err := rt.rollbackNode(ctx, m); err != nil {
					rt.logf("rollout: rollback of committed node %s failed: %v", m.name, err)
				}
			} else {
				rt.abortNode(ctx, m)
			}
		}
		rt.stats.aborted.Add(1)
		rt.markAborted(ctx, plan)
		rt.logf("rollout: epoch aborted at commit: %v", commitErr)
		return nil, commitErr
	}

	// The epoch is live cluster-wide; rotate the journal's corpus files
	// and make the outcome durable. Failures past this point are logged,
	// never surfaced as a rollout error — returning one would claim the
	// fleet is not on the target when it is. A journal left at commit
	// resumes as a harmless roll-forward onto the corpus already
	// serving.
	if rt.journal != nil {
		if err := rt.journal.promoteEpoch(); err != nil {
			rt.logf("rollout: epoch %d corpus rotation: %v", plan.epoch, err)
		}
	}
	if err := rt.journalPhase(ctx, plan, phaseCommitted, fp); err != nil {
		rt.logf("rollout: epoch %d: %v", plan.epoch, err)
	}

	res := &RolloutResult{Fingerprint: fp, Nodes: make([]NodeCommit, len(coms))}
	for i, a := range coms {
		res.Nodes[i] = NodeCommit{Node: a.node, Generation: a.gen}
	}
	rt.stats.rollouts.Add(1)
	rt.logf("rollout: epoch %d committed %s on %d nodes (%d via delta)", plan.epoch, fp, len(coms), len(plan.useDelta))
	return res, nil
}

// epochPlan is one rollout epoch's payload plan: the full target corpus
// (always shipped on the fallback path and persisted at commit), the
// optional HBD patch against the journaled committed corpus, and which
// members were planned to receive it.
type epochPlan struct {
	epoch    uint64
	targetFP string // coordinator-side fingerprint of the unfiltered target
	full     []byte
	delta    []byte // nil when no delta applies this epoch
	useDelta map[string]bool
	nodes    []journalNode
}

// planEpoch allocates the epoch number and decides per-node payloads.
// Without a journal the plan is the legacy one — ship the operator's
// bytes to everyone (an HBD patch is refused: there is no durable base
// to resolve it against). With a journal the target is normalized to
// canonical HBC bytes (resolving an HBD patch against the committed
// corpus when that is what the operator posted), persisted as the
// epoch corpus, and diffed against the committed base; members whose
// reported live fingerprint equals the base's get the patch.
func (rt *Router) planEpoch(ctx context.Context, members []*member, data []byte) (*epochPlan, error) {
	plan := &epochPlan{
		epoch:    rt.epoch.Add(1),
		full:     data,
		useDelta: make(map[string]bool),
		nodes:    make([]journalNode, len(members)),
	}
	for i, m := range members {
		plan.nodes[i] = journalNode{Node: m.name}
	}
	if rt.journal == nil {
		if corpusbin.IsHBD(data) {
			return nil, fmt.Errorf("cluster: rollout: an HBD delta needs the journaled committed corpus as its base; start the coordinator with a journal path")
		}
		return plan, nil
	}

	committed, err := rt.journal.readCommitted()
	if err != nil {
		return nil, err
	}
	var base *extract.Corpus
	if committed != nil {
		if base, err = extract.Load(bytes.NewReader(committed)); err != nil {
			// A damaged committed corpus must not block rollouts; it
			// only costs this epoch its deltas.
			rt.logf("rollout: committed corpus unreadable, full sends this epoch: %v", err)
			base = nil
		}
	}
	var target *extract.Corpus
	if corpusbin.IsHBD(data) {
		if base == nil {
			return nil, fmt.Errorf("cluster: rollout: HBD delta posted but the journal holds no committed corpus to patch")
		}
		applied, full, err := extract.ApplyDelta(base, data)
		if err != nil {
			return nil, fmt.Errorf("cluster: rollout: %w", err)
		}
		target, plan.full, plan.delta = applied, full, data
	} else {
		if target, err = extract.Load(bytes.NewReader(data)); err != nil {
			return nil, fmt.Errorf("cluster: rollout: target corpus does not load: %w", err)
		}
		var buf bytes.Buffer
		if err := target.SaveBinary(&buf); err != nil {
			return nil, fmt.Errorf("cluster: rollout: %w", err)
		}
		plan.full = buf.Bytes()
		if base != nil && base.FingerprintString() != target.FingerprintString() {
			var db bytes.Buffer
			if err := extract.Diff(base, target, &db); err != nil {
				rt.logf("rollout: diff against committed base failed, full sends this epoch: %v", err)
			} else {
				plan.delta = db.Bytes()
			}
		}
	}
	plan.targetFP = target.FingerprintString()

	if plan.delta != nil {
		baseFP := base.FingerprintString()
		fps := rt.memberFingerprints(ctx, members)
		for i, m := range members {
			if fps[i] == baseFP {
				plan.useDelta[m.name] = true
				plan.nodes[i].Delta = true
			}
		}
		rt.logf("rollout: epoch %d: delta %d bytes vs full %d bytes, %d/%d members eligible",
			plan.epoch, len(plan.delta), len(plan.full), len(plan.useDelta), len(members))
	}
	if err := rt.journal.writeEpochCorpus(plan.full); err != nil {
		return nil, err
	}
	return plan, nil
}

// journalPhase makes the phase about to run durable; a no-op without a
// journal. fp overrides the plan's target fingerprint once the prepare
// acks have agreed on the cluster-wide one.
func (rt *Router) journalPhase(ctx context.Context, plan *epochPlan, phase, fp string) error {
	if rt.journal == nil {
		return nil
	}
	if fp == "" {
		fp = plan.targetFP
	}
	return rt.journal.record(ctx, &journalState{
		Epoch: plan.epoch, TargetFP: fp, Phase: phase, Nodes: plan.nodes,
	})
}

// abortEpochJournaled aborts the epoch on every node and records the
// aborted outcome.
func (rt *Router) abortEpochJournaled(ctx context.Context, plan *epochPlan, members []*member, phase, node string, cause error) {
	rt.abortEpoch(ctx, members, phase, node, cause)
	rt.markAborted(ctx, plan)
}

// markAborted journals the aborted outcome. Best effort: the abort
// itself already succeeded, and an unrecorded abort merely costs a
// redundant abort round on the next resume.
func (rt *Router) markAborted(ctx context.Context, plan *epochPlan) {
	if rt.journal == nil {
		return
	}
	if err := rt.journal.record(ctx, &journalState{
		Epoch: plan.epoch, TargetFP: plan.targetFP, Phase: phaseAborted, Nodes: plan.nodes,
	}); err != nil {
		rt.logf("rollout: journaling abort of epoch %d: %v", plan.epoch, err)
	}
}

// memberFingerprints reads every member's live corpus fingerprint
// concurrently; unreachable members report "" and fall onto the
// full-corpus path.
func (rt *Router) memberFingerprints(ctx context.Context, members []*member) []string {
	fps := make([]string, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			fps[i], _, _ = rt.nodeStatus(ctx, m)
		}(i, m)
	}
	wg.Wait()
	return fps
}

// nodeStatus asks one node's /-/status for its live fingerprint and
// serving generation, bounded by ProbeTimeout.
func (rt *Router) nodeStatus(ctx context.Context, m *member) (fp string, gen uint64, err error) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, m.endpoint("/-/status"), nil)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: status of %s: %w", m.name, err)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: status of %s: %w", m.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("cluster: status of %s: %d", m.name, resp.StatusCode)
	}
	var st struct {
		Fingerprint string `json:"fingerprint"`
		Generation  uint64 `json:"generation"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return "", 0, fmt.Errorf("cluster: status of %s: %w", m.name, err)
	}
	return st.Fingerprint, st.Generation, nil
}

// phaseFanout runs one phase against every member concurrently, each
// call bounded by RolloutPhaseTimeout, and collects the acks in member
// order.
func (rt *Router) phaseFanout(ctx context.Context, phase string, members []*member, call func(context.Context, *member) (string, uint64, error)) []phaseAck {
	acks := make([]phaseAck, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.RolloutPhaseTimeout)
			defer cancel()
			fp, gen, err := call(pctx, m)
			acks[i] = phaseAck{node: m.name, fp: fp, gen: gen, err: err}
		}(i, m)
	}
	wg.Wait()
	return acks
}

// rolloutPost performs one phase call against one node and decodes the
// ack headers. The faultinject hook (keyed "<phase>:<node>") lets chaos
// tests break specific nodes in specific phases deterministically.
func (rt *Router) rolloutPost(ctx context.Context, phase string, m *member, path, rawQuery string, body []byte) (string, uint64, error) {
	if err := faultinject.Fire(ctx, faultinject.StageClusterRollout, phase+":"+m.name); err != nil {
		return "", 0, err
	}
	u := *m.base
	u.Path, u.RawQuery = path, rawQuery
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), rd)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: rollout %s request: %w", phase, err)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: rollout %s call: %w", phase, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		if resp.Header.Get("X-Hoiho-Rollout-Nack") == "base-mismatch" {
			return "", 0, fmt.Errorf("cluster: rollout %s: %w: %s", phase, ErrBaseMismatchNack, bytes.TrimSpace(b))
		}
		return "", 0, fmt.Errorf("cluster: rollout %s nacked with %d: %s", phase, resp.StatusCode, bytes.TrimSpace(b))
	}
	fp := resp.Header.Get("X-Hoiho-Corpus")
	if fp == "" {
		return "", 0, fmt.Errorf("cluster: rollout %s ack carries no X-Hoiho-Corpus proof", phase)
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Hoiho-Generation"), 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: rollout %s ack generation: %w", phase, err)
	}
	return fp, gen, nil
}

// abortEpoch drops every node's side buffer and accounts the aborted
// epoch. Best effort by design: an abort that cannot reach a node
// leaves only an inert side buffer behind (it never serves, and the
// next prepare overwrites it).
func (rt *Router) abortEpoch(ctx context.Context, members []*member, phase, node string, cause error) {
	for _, m := range members {
		rt.abortNode(ctx, m)
	}
	rt.stats.aborted.Add(1)
	rt.logf("rollout: epoch aborted in %s at %s: %v", phase, node, cause)
}

// abortNode drops one node's side buffer. No faultinject hook here: the
// abort path is the protocol's safety net and must stay maximally
// reliable even under injected chaos.
func (rt *Router) abortNode(ctx context.Context, m *member) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.RolloutPhaseTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, m.endpoint("/-/rollout/abort"), nil)
	if err != nil {
		return
	}
	if resp, err := rt.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// rollbackNode undoes a committed node through the existing single-node
// rollback path, restoring the pre-epoch corpus.
func (rt *Router) rollbackNode(ctx context.Context, m *member) error {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.RolloutPhaseTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, m.endpoint("/-/rollback"), nil)
	if err != nil {
		return fmt.Errorf("cluster: rollback request: %w", err)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: rollback call: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: rollback refused with %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}

// handleRollout is the operator entry point: the corpus arrives in the
// request body, an optional ?hold-validate=DURATION widens the
// prepare→validate window (chaos/CI hook), and the response is the
// committed RolloutResult or the error that aborted the epoch.
func (rt *Router) handleRollout(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxRolloutBodyBytes+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: reading rollout body: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(data)) > maxRolloutBodyBytes {
		http.Error(w, fmt.Sprintf("cluster: rollout corpus exceeds %d-byte cap", maxRolloutBodyBytes), http.StatusRequestEntityTooLarge)
		return
	}
	var hold time.Duration
	if hv := r.URL.Query().Get("hold-validate"); hv != "" {
		hold, err = time.ParseDuration(hv)
		if err != nil {
			http.Error(w, fmt.Sprintf("cluster: bad hold-validate: %v", err), http.StatusBadRequest)
			return
		}
	}
	res, err := rt.Rollout(r.Context(), data, hold)
	if err != nil {
		code := http.StatusBadGateway
		if err == ErrRolloutInProgress {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
