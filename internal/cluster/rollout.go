package cluster

// Two-phase corpus rollout, coordinator side. The invariant the
// protocol buys: within one rollout epoch, no client ever observes a
// generation that was not committed cluster-wide. The coordinator
// drives every node of the current view through three rounds:
//
//	prepare  — ship the corpus bytes to every node's side buffer. Each
//	           ack carries the prepared fingerprint (X-Hoiho-Corpus)
//	           and the serving generation it would supersede
//	           (X-Hoiho-Generation). All prepared fingerprints must
//	           agree — the first ack is the reference, because nodes
//	           running a -classes filter fingerprint the retained
//	           subset, which the coordinator cannot precompute.
//	validate — every node re-acks the same fingerprint and an unmoved
//	           serving generation. A node that lost its side buffer,
//	           reloaded mid-epoch, or died since prepare nacks here.
//	commit   — every node publishes, pinned to the agreed fingerprint.
//
// Any nack or timeout in prepare/validate aborts the epoch: every side
// buffer is dropped and serving state is untouched. A partial commit —
// the one window where some nodes have published — is repaired by
// rolling the committed nodes back through the nodes' existing
// /-/rollback path, restoring the pre-epoch corpus everywhere.
//
// The protocol is strictly one epoch at a time (adminMu), and the
// member set is pinned to the view loaded at epoch start, so a
// concurrent join/leave cannot split a phase across two rings.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hoiho/internal/faultinject"
)

// maxRolloutBodyBytes caps a corpus accepted by POST /-/rollout,
// matching the node-side prepare cap.
const maxRolloutBodyBytes = 64 << 20

// RolloutResult reports a committed epoch: the cluster-wide fingerprint
// and each node's new serving generation.
type RolloutResult struct {
	Fingerprint string       `json:"fingerprint"`
	Nodes       []NodeCommit `json:"nodes"`
}

// NodeCommit is one node's post-commit identity.
type NodeCommit struct {
	Node       string `json:"node"`
	Generation uint64 `json:"generation"`
}

// phaseAck is one node's answer to one rollout phase.
type phaseAck struct {
	node string
	fp   string
	gen  uint64
	err  error
}

// Rollout drives one two-phase corpus swap across the whole cluster.
// data is the corpus to ship (HBC or JSON — nodes sniff). holdValidate,
// when positive, pauses between prepare and validate; it exists so
// chaos tests and the CI smoke script can widen the window in which to
// kill a node mid-epoch. On any failure the epoch is aborted (committed
// nodes rolled back) and the returned RolloutError names the phase and
// node that broke it.
func (rt *Router) Rollout(ctx context.Context, data []byte, holdValidate time.Duration) (*RolloutResult, error) {
	if !rt.adminMu.TryLock() {
		return nil, ErrRolloutInProgress
	}
	defer rt.adminMu.Unlock()
	v := rt.view.Load()
	members := v.members
	if len(members) == 0 {
		return nil, ErrNoMembers
	}

	// Phase 1: prepare. Ship the bytes everywhere; agree on the
	// fingerprint.
	preps := rt.phaseFanout(ctx, "prepare", members, func(pctx context.Context, m *member) (string, uint64, error) {
		return rt.rolloutPost(pctx, "prepare", m, "/-/rollout/prepare", "", data)
	})
	var fp string
	for _, a := range preps {
		if a.err != nil {
			rt.abortEpoch(ctx, members, "prepare", a.node, a.err)
			return nil, &RolloutError{Phase: "prepare", Node: a.node, Err: a.err}
		}
		if fp == "" {
			fp = a.fp
		} else if a.fp != fp {
			err := fmt.Errorf("cluster: prepared fingerprint %s disagrees with reference %s (mismatched corpus or class filters across nodes)", a.fp, fp)
			rt.abortEpoch(ctx, members, "prepare", a.node, err)
			return nil, &RolloutError{Phase: "prepare", Node: a.node, Err: err}
		}
	}

	// Optional hold between phases (chaos/test hook), bounded by ctx.
	if holdValidate > 0 {
		t := time.NewTimer(holdValidate)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			rt.abortEpoch(ctx, members, "validate", "", ctx.Err())
			return nil, &RolloutError{Phase: "validate", Err: ctx.Err()}
		}
	}

	// Phase 2: validate. Every node must still hold the agreed corpus
	// over the generation it acked at prepare.
	vals := rt.phaseFanout(ctx, "validate", members, func(pctx context.Context, m *member) (string, uint64, error) {
		return rt.rolloutPost(pctx, "validate", m, "/-/rollout/validate", "", nil)
	})
	for i, a := range vals {
		err := a.err
		if err == nil && a.fp != fp {
			err = fmt.Errorf("cluster: validate acked fingerprint %s, epoch agreed on %s", a.fp, fp)
		}
		if err == nil && a.gen != preps[i].gen {
			err = fmt.Errorf("cluster: serving generation moved from %d to %d during the epoch", preps[i].gen, a.gen)
		}
		if err != nil {
			rt.abortEpoch(ctx, members, "validate", a.node, err)
			return nil, &RolloutError{Phase: "validate", Node: a.node, Err: err}
		}
	}

	// Phase 3: commit, pinned to the agreed fingerprint. A partial
	// commit is repaired: committed nodes roll back, the rest abort.
	coms := rt.phaseFanout(ctx, "commit", members, func(pctx context.Context, m *member) (string, uint64, error) {
		return rt.rolloutPost(pctx, "commit", m, "/-/rollout/commit", "fingerprint="+fp, nil)
	})
	var commitErr *RolloutError
	for _, a := range coms {
		if a.err != nil {
			commitErr = &RolloutError{Phase: "commit", Node: a.node, Err: a.err}
			break
		}
	}
	if commitErr != nil {
		for i, a := range coms {
			m := members[i]
			if a.err == nil {
				if err := rt.rollbackNode(ctx, m); err != nil {
					rt.logf("rollout: rollback of committed node %s failed: %v", m.name, err)
				}
			} else {
				rt.abortNode(ctx, m)
			}
		}
		rt.stats.aborted.Add(1)
		rt.logf("rollout: epoch aborted at commit: %v", commitErr)
		return nil, commitErr
	}

	res := &RolloutResult{Fingerprint: fp, Nodes: make([]NodeCommit, len(coms))}
	for i, a := range coms {
		res.Nodes[i] = NodeCommit{Node: a.node, Generation: a.gen}
	}
	rt.stats.rollouts.Add(1)
	rt.logf("rollout: committed %s on %d nodes", fp, len(coms))
	return res, nil
}

// phaseFanout runs one phase against every member concurrently, each
// call bounded by RolloutPhaseTimeout, and collects the acks in member
// order.
func (rt *Router) phaseFanout(ctx context.Context, phase string, members []*member, call func(context.Context, *member) (string, uint64, error)) []phaseAck {
	acks := make([]phaseAck, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.RolloutPhaseTimeout)
			defer cancel()
			fp, gen, err := call(pctx, m)
			acks[i] = phaseAck{node: m.name, fp: fp, gen: gen, err: err}
		}(i, m)
	}
	wg.Wait()
	return acks
}

// rolloutPost performs one phase call against one node and decodes the
// ack headers. The faultinject hook (keyed "<phase>:<node>") lets chaos
// tests break specific nodes in specific phases deterministically.
func (rt *Router) rolloutPost(ctx context.Context, phase string, m *member, path, rawQuery string, body []byte) (string, uint64, error) {
	if err := faultinject.Fire(ctx, faultinject.StageClusterRollout, phase+":"+m.name); err != nil {
		return "", 0, err
	}
	u := *m.base
	u.Path, u.RawQuery = path, rawQuery
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), rd)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: rollout %s request: %w", phase, err)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: rollout %s call: %w", phase, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("cluster: rollout %s nacked with %d: %s", phase, resp.StatusCode, bytes.TrimSpace(b))
	}
	fp := resp.Header.Get("X-Hoiho-Corpus")
	if fp == "" {
		return "", 0, fmt.Errorf("cluster: rollout %s ack carries no X-Hoiho-Corpus proof", phase)
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Hoiho-Generation"), 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: rollout %s ack generation: %w", phase, err)
	}
	return fp, gen, nil
}

// abortEpoch drops every node's side buffer and accounts the aborted
// epoch. Best effort by design: an abort that cannot reach a node
// leaves only an inert side buffer behind (it never serves, and the
// next prepare overwrites it).
func (rt *Router) abortEpoch(ctx context.Context, members []*member, phase, node string, cause error) {
	for _, m := range members {
		rt.abortNode(ctx, m)
	}
	rt.stats.aborted.Add(1)
	rt.logf("rollout: epoch aborted in %s at %s: %v", phase, node, cause)
}

// abortNode drops one node's side buffer. No faultinject hook here: the
// abort path is the protocol's safety net and must stay maximally
// reliable even under injected chaos.
func (rt *Router) abortNode(ctx context.Context, m *member) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.RolloutPhaseTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, m.endpoint("/-/rollout/abort"), nil)
	if err != nil {
		return
	}
	if resp, err := rt.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// rollbackNode undoes a committed node through the existing single-node
// rollback path, restoring the pre-epoch corpus.
func (rt *Router) rollbackNode(ctx context.Context, m *member) error {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.RolloutPhaseTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, m.endpoint("/-/rollback"), nil)
	if err != nil {
		return fmt.Errorf("cluster: rollback request: %w", err)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: rollback call: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: rollback refused with %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}

// handleRollout is the operator entry point: the corpus arrives in the
// request body, an optional ?hold-validate=DURATION widens the
// prepare→validate window (chaos/CI hook), and the response is the
// committed RolloutResult or the error that aborted the epoch.
func (rt *Router) handleRollout(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxRolloutBodyBytes+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: reading rollout body: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(data)) > maxRolloutBodyBytes {
		http.Error(w, fmt.Sprintf("cluster: rollout corpus exceeds %d-byte cap", maxRolloutBodyBytes), http.StatusRequestEntityTooLarge)
		return
	}
	var hold time.Duration
	if hv := r.URL.Query().Get("hold-validate"); hv != "" {
		hold, err = time.ParseDuration(hv)
		if err != nil {
			http.Error(w, fmt.Sprintf("cluster: bad hold-validate: %v", err), http.StatusBadRequest)
			return
		}
	}
	res, err := rt.Rollout(r.Context(), data, hold)
	if err != nil {
		code := http.StatusBadGateway
		if err == ErrRolloutInProgress {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
