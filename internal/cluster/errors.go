package cluster

import (
	"errors"
	"fmt"
)

// The cluster error taxonomy, mirroring internal/serve's design: every
// failure the router or rollout coordinator can produce is a sentinel
// or a wrapper with Unwrap, classified by errors.Is/As — never by
// string matching.
var (
	// ErrNoMembers means the router has no cluster members at all —
	// misconfiguration, or every node has been removed.
	ErrNoMembers = errors.New("cluster: no cluster members configured")
	// ErrShardUnavailable means every replica of the request's shard
	// (and every degraded fallback) failed or is unreachable. The
	// request was shed, not misrouted.
	ErrShardUnavailable = errors.New("cluster: all replicas of the shard are unavailable")
	// ErrRolloutInProgress means a rollout or membership change is
	// already running; the protocol is strictly one epoch at a time.
	ErrRolloutInProgress = errors.New("cluster: a rollout or membership change is already in progress")
	// ErrMemberExists means a join named a node already in the ring.
	ErrMemberExists = errors.New("cluster: node is already a member")
	// ErrMemberUnknown means a leave named a node not in the ring.
	ErrMemberUnknown = errors.New("cluster: node is not a member")
	// ErrBaseMismatchNack means a node refused a rollout delta because
	// its live corpus is not the delta's base (serve.ErrBaseMismatch on
	// the node side, signalled back via the X-Hoiho-Rollout-Nack
	// header). The coordinator degrades gracefully: it resends the full
	// corpus to just that node instead of aborting the epoch.
	ErrBaseMismatchNack = errors.New("cluster: node nacked the rollout delta: base mismatch")
)

// ForwardError is one failed forwarding attempt: the node that was
// tried and why it failed. The router retries other replicas; a
// ForwardError surfaces only when every candidate is exhausted.
type ForwardError struct {
	// Node is the member name the attempt targeted.
	Node string
	// Err is the transport or status failure.
	Err error
}

func (e *ForwardError) Error() string {
	return fmt.Sprintf("cluster: forward to %s: %v", e.Node, e.Err)
}

// Unwrap exposes the transport failure to errors.Is/As.
func (e *ForwardError) Unwrap() error { return e.Err }

// RolloutError is a failed rollout epoch: the phase that broke, the
// node that broke it, and the underlying cause. By the time a
// RolloutError is returned, the coordinator has already aborted the
// epoch — every node is back on (or never left) the prior generation.
type RolloutError struct {
	// Phase is "prepare", "validate", or "commit".
	Phase string
	// Node is the member that nacked or timed out, when attributable.
	Node string
	// Err is the underlying failure.
	Err error
}

func (e *RolloutError) Error() string {
	if e.Node == "" {
		return fmt.Sprintf("cluster: rollout %s phase failed: %v", e.Phase, e.Err)
	}
	return fmt.Sprintf("cluster: rollout %s phase failed at %s: %v", e.Phase, e.Node, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RolloutError) Unwrap() error { return e.Err }
