package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over the registered-domain suffix
// space. Each node contributes vnodes points; a key's owners are the
// first R distinct nodes found walking clockwise from the key's hash.
// Consistent hashing keeps re-sharding cheap: when a node joins or
// leaves, only the keys whose clockwise walk crossed that node move —
// every other suffix keeps its replica set, so a membership change
// never invalidates the whole routing table.
//
// A Ring is immutable after construction. The router publishes rings
// through an atomic pointer; a membership change builds a new Ring and
// swaps it in, while requests already routing on the old one finish
// there — nodes serve the full corpus, so routing on a stale ring is a
// locality miss, never a wrong answer.
type Ring struct {
	nodes  []string // sorted, distinct node names
	repl   int      // replicas per key, capped at len(nodes)
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// NewRing builds a ring over the given node names with vnodes virtual
// points per node and repl-way replication. Names must be non-empty and
// distinct; repl is capped at the node count. The construction is fully
// deterministic: the same membership always yields the same ring,
// regardless of input order.
//
//hoiho:ctxflow bounded in-memory construction over the member list (a handful of nodes times vnodes hashes), microseconds; nothing to cancel
func NewRing(nodes []string, vnodes, repl int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if repl <= 0 {
		repl = 1
	}
	if repl > len(nodes) {
		repl = len(nodes)
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: ring node name must not be empty")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate ring node %q", n)
		}
	}
	r := &Ring{
		nodes:  sorted,
		repl:   repl,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for i, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(n + "#" + strconv.Itoa(v)),
				node: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break on node index so the ring
		// stays deterministic.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the ring's member names, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Replication returns the effective replica count per key.
func (r *Ring) Replication() int { return r.repl }

// Owners returns the key's replica set: up to Replication() distinct
// node names in preference order (primary first).
func (r *Ring) Owners(key string) []string {
	return r.OwnersAppend(nil, key)
}

// OwnersAppend appends the key's replica set to dst and returns it,
// letting a caller on the forwarding path reuse one backing array.
func (r *Ring) OwnersAppend(dst []string, key string) []string {
	h := hashKey(key)
	// First point at or after h, wrapping.
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	seen := 0
	for off := 0; off < len(r.points) && seen < r.repl; off++ {
		p := r.points[(i+off)%len(r.points)]
		name := r.nodes[p.node]
		dup := false
		for _, have := range dst[len(dst)-seen:] {
			if have == name {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, name)
		seen++
	}
	return dst
}

// Owner returns the key's primary owner.
func (r *Ring) Owner(key string) string {
	owners := r.OwnersAppend(make([]string, 0, 1), key)
	return owners[0]
}

// hashKey is the ring's point and key hash: FNV-1a over the bytes.
// Deterministic across processes and runs, so every router instance
// computes the identical shard map from the same membership.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
