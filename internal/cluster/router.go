package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hoiho/internal/faultinject"
)

// maxProxyRespBytes caps a buffered upstream response. Extraction
// responses are small; the cap only guards against a misbehaving node.
const maxProxyRespBytes = 32 << 20

// Handler returns the router's full HTTP surface. Extraction endpoints
// shard and forward; health endpoints report the router's own view;
// admin endpoints drive membership and rollouts.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /extract", rt.handleExtract)
	mux.HandleFunc("POST /extract", rt.handleExtractBatch)
	mux.HandleFunc("GET /-/cluster", rt.handleCluster)
	mux.HandleFunc("POST /-/rollout", rt.handleRollout)
	mux.HandleFunc("POST /-/join", rt.handleJoin)
	mux.HandleFunc("POST /-/leave", rt.handleLeave)
	return mux
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports routability: ready as long as at least one
// member is healthy. Shard-level gaps surface per request (503 with
// Retry-After), not as global unreadiness.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	v := rt.view.Load()
	for _, m := range v.members {
		if m.healthy.Load() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
			return
		}
	}
	rt.shed(w, "no healthy cluster members")
}

func (rt *Router) handleExtract(w http.ResponseWriter, r *http.Request) {
	rt.stats.requests.Add(1)
	host := r.URL.Query().Get("host")
	if host == "" {
		http.Error(w, "cluster: missing host query parameter", http.StatusBadRequest)
		return
	}
	rt.forward(w, r, rt.shardKey(host), nil, true)
}

// handleExtractBatch forwards a newline-separated batch body whole to
// one node, sharded on the first hostname — batch callers group related
// hosts, and splitting a batch across nodes would trade one upstream
// round trip for N with no correctness gain (every node serves the full
// corpus).
func (rt *Router) handleExtractBatch(w http.ResponseWriter, r *http.Request) {
	rt.stats.requests.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBatchBytes+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: reading batch body: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > rt.cfg.MaxBatchBytes {
		http.Error(w, fmt.Sprintf("cluster: batch body exceeds %d-byte cap", rt.cfg.MaxBatchBytes), http.StatusBadRequest)
		return
	}
	first := firstHostLine(body)
	if first == "" {
		http.Error(w, "cluster: batch body contains no hostnames", http.StatusBadRequest)
		return
	}
	rt.forward(w, r, rt.shardKey(first), body, false)
}

// firstHostLine returns the first non-blank line of a batch body.
func firstHostLine(body []byte) string {
	for _, line := range strings.Split(string(body), "\n") {
		if h := strings.TrimSpace(line); h != "" {
			return h
		}
	}
	return ""
}

// attemptResult is one forwarding attempt's outcome, tagged with the
// candidate index so the select loop knows which node produced it.
type attemptResult struct {
	idx int
	res *proxyResult
	err error
}

// forward routes one request to its shard: replicas in preference
// order, bounded retries, an optional hedged second attempt after the
// latency budget, and a degraded fallback to healthy non-owners when
// the whole replica set is down. Exhausting every candidate sheds the
// request with the serve taxonomy (503 + jittered Retry-After); the
// router's own deadline expiring sheds it as 504.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte, hedge bool) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()

	v := rt.view.Load()
	candidates, owners := rt.candidates(v, key)
	if len(candidates) == 0 {
		rt.stats.shed.Add(1)
		rt.shed(w, ErrShardUnavailable.Error())
		return
	}

	// Every attempt gets its own bounded context; all of them are
	// cancelled on return so hedged losers stop immediately rather than
	// running out their TryTimeout.
	cancels := make([]context.CancelFunc, 0, len(candidates))
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// Buffered to the candidate count: every attempt goroutine can
	// deliver (or fall through its default arm) and exit even if the
	// handler has already returned.
	replies := make(chan attemptResult, len(candidates))
	launched, pending := 0, 0
	launch := func() {
		i := launched
		launched++
		pending++
		m := candidates[i]
		actx, acancel := context.WithTimeout(ctx, rt.cfg.TryTimeout)
		cancels = append(cancels, acancel)
		rt.stats.forwards.Add(1)
		go func() {
			res, err := rt.proxy(actx, m, r.Method, r.URL.Path, r.URL.RawQuery, body)
			select {
			case replies <- attemptResult{idx: i, res: res, err: err}:
			default:
			}
		}()
	}
	launch()

	var hedgeC <-chan time.Time
	if hedge && len(candidates) > 1 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	for pending > 0 {
		select {
		case ar := <-replies:
			pending--
			m := candidates[ar.idx]
			if ar.err != nil {
				// Transport-level failure: the node is unreachable right
				// now; demote it and fail over.
				rt.markUnhealthy(m, ar.err)
			} else if !retryableStatus(ar.res.status) {
				rt.writeProxied(w, ar.res, m.name, ar.idx >= owners)
				return
			}
			// Retryable (transport error, 429, or 5xx): try the next
			// candidate if any remain un-launched.
			if launched < len(candidates) {
				rt.stats.retries.Add(1)
				launch()
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(candidates) {
				rt.stats.hedges.Add(1)
				launch()
			}
		case <-ctx.Done():
			rt.stats.shed.Add(1)
			http.Error(w, "cluster: request deadline exceeded", http.StatusGatewayTimeout)
			return
		}
	}
	rt.stats.shed.Add(1)
	rt.shed(w, ErrShardUnavailable.Error())
}

// candidates orders the nodes a request may be forwarded to: healthy
// owners first, then unhealthy owners (health bits lag reality — a node
// marked down may answer, and trying it beats shedding), then healthy
// non-owners as the degraded last resort. The returned owners count
// marks where degraded territory starts. The list is capped at
// MaxAttempts.
func (rt *Router) candidates(v *view, key string) (list []*member, owners int) {
	names := v.ring.OwnersAppend(make([]string, 0, v.ring.Replication()), key)
	isOwner := func(name string) bool {
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}
	list = make([]*member, 0, rt.cfg.MaxAttempts)
	for _, n := range names {
		if m := v.byName[n]; m != nil && m.healthy.Load() {
			list = append(list, m)
		}
	}
	for _, n := range names {
		if m := v.byName[n]; m != nil && !m.healthy.Load() {
			list = append(list, m)
		}
	}
	owners = len(list)
	for _, m := range v.members {
		if m.healthy.Load() && !isOwner(m.name) {
			list = append(list, m)
		}
	}
	if len(list) > rt.cfg.MaxAttempts {
		list = list[:rt.cfg.MaxAttempts]
		if owners > len(list) {
			owners = len(list)
		}
	}
	return list, owners
}

// retryableStatus reports whether an upstream status should fail over
// to another replica: shed signals (429) and server-side failures
// (5xx). Extraction is read-only, so retrying elsewhere is always safe.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// proxyResult is one buffered upstream response.
type proxyResult struct {
	status int
	header http.Header
	body   []byte
}

// proxy performs one forwarding attempt against m and buffers the
// response. The faultinject hook (keyed by node name) lets chaos tests
// fail specific nodes' forwards deterministically.
func (rt *Router) proxy(ctx context.Context, m *member, method, path, rawQuery string, body []byte) (*proxyResult, error) {
	if err := faultinject.Fire(ctx, faultinject.StageClusterForward, m.name); err != nil {
		return nil, &ForwardError{Node: m.name, Err: err}
	}
	u := *m.base
	u.Path, u.RawQuery = path, rawQuery
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
	if err != nil {
		return nil, &ForwardError{Node: m.name, Err: err}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, &ForwardError{Node: m.name, Err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyRespBytes))
	if err != nil {
		return nil, &ForwardError{Node: m.name, Err: err}
	}
	return &proxyResult{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// proxiedHeaders are the upstream headers forwarded to the client: the
// corpus provenance stamps (the rollout invariant's evidence), content
// type, and backoff hints.
var proxiedHeaders = []string{
	"Content-Type",
	"X-Hoiho-Corpus",
	"X-Hoiho-Generation",
	"Retry-After",
}

// writeProxied relays an upstream response, adding the serving node's
// identity and, when the answer came from off the shard's replica set,
// an explicit degraded marker — correct (full corpus everywhere) but
// misplaced, and the client deserves to know.
func (rt *Router) writeProxied(w http.ResponseWriter, res *proxyResult, node string, degraded bool) {
	for _, h := range proxiedHeaders {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Hoiho-Node", node)
	if degraded {
		rt.stats.degraded.Add(1)
		w.Header().Set("X-Hoiho-Degraded", "shard-owners-unavailable")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// shed writes the router's 503: all candidates exhausted (or none
// exist), with a jittered Retry-After so synchronized clients spread
// their return.
func (rt *Router) shed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.RetryAfter))
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// retrySeq and retryAfterSeconds mirror internal/serve's jittered
// Retry-After: deterministic Fibonacci-hash spread over [base, 2*base],
// no RNG, no wall clock.
var retrySeq atomic.Uint64

func retryAfterSeconds(d time.Duration) string {
	base := int((d + time.Second - 1) / time.Second)
	if base < 1 {
		base = 1
	}
	x := retrySeq.Add(1) * 0x9e3779b97f4a7c15
	jitter := int((x >> 33) % uint64(base+1))
	return strconv.Itoa(base + jitter)
}

// ClusterStatus is the /-/cluster document: membership health, ring
// shape, and the router's counters.
type ClusterStatus struct {
	Members     []MemberStatus `json:"members"`
	Replication int            `json:"replication"`
	VNodes      int            `json:"vnodes"`

	Requests  uint64 `json:"requests"`
	Forwards  uint64 `json:"forwards"`
	Retries   uint64 `json:"retries"`
	Hedges    uint64 `json:"hedges"`
	Degraded  uint64 `json:"degraded"`
	Shed      uint64 `json:"shed"`
	Rollouts  uint64 `json:"rollouts"`
	Aborted   uint64 `json:"aborted_rollouts"`
	Joins     uint64 `json:"joins"`
	Leaves    uint64 `json:"leaves"`
	Unhealthy uint64 `json:"unhealthy_marks"`

	AntiEntropySweeps      uint64 `json:"anti_entropy_sweeps"`
	AntiEntropyRepairs     uint64 `json:"anti_entropy_repairs"`
	AntiEntropyRepairFails uint64 `json:"anti_entropy_repair_failures"`
}

// MemberStatus is one node's health as the router sees it.
type MemberStatus struct {
	Node      string `json:"node"`
	Healthy   bool   `json:"healthy"`
	LastProbe string `json:"last_probe_error,omitempty"`
}

// StatusNow returns the current ClusterStatus document (the
// programmatic twin of GET /-/cluster).
func (rt *Router) StatusNow() ClusterStatus {
	v := rt.view.Load()
	st := ClusterStatus{
		Members:     make([]MemberStatus, 0, len(v.members)),
		Replication: v.ring.Replication(),
		VNodes:      rt.cfg.VNodes,
		Requests:    rt.stats.requests.Load(),
		Forwards:    rt.stats.forwards.Load(),
		Retries:     rt.stats.retries.Load(),
		Hedges:      rt.stats.hedges.Load(),
		Degraded:    rt.stats.degraded.Load(),
		Shed:        rt.stats.shed.Load(),
		Rollouts:    rt.stats.rollouts.Load(),
		Aborted:     rt.stats.aborted.Load(),
		Joins:       rt.stats.joins.Load(),
		Leaves:      rt.stats.leaves.Load(),
		Unhealthy:   rt.stats.unhealthy.Load(),

		AntiEntropySweeps:      rt.stats.sweeps.Load(),
		AntiEntropyRepairs:     rt.stats.repairs.Load(),
		AntiEntropyRepairFails: rt.stats.repairFails.Load(),
	}
	for _, m := range v.members {
		ms := MemberStatus{Node: m.name, Healthy: m.healthy.Load()}
		if p := m.probeErr.Load(); p != nil {
			ms.LastProbe = *p
		}
		st.Members = append(st.Members, ms)
	}
	return st
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.StatusNow())
}

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	if node == "" {
		http.Error(w, "cluster: missing node query parameter", http.StatusBadRequest)
		return
	}
	if err := rt.Join(r.Context(), node); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, rt.StatusNow())
}

func (rt *Router) handleLeave(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	if node == "" {
		http.Error(w, "cluster: missing node query parameter", http.StatusBadRequest)
		return
	}
	if err := rt.Leave(node); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, rt.StatusNow())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
