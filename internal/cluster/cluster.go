// Package cluster turns a fleet of hoihod nodes into one fault-tolerant
// extraction service. The paper's corpus is only useful in production if
// it can be served at scale and updated without ever exposing a stale or
// mixed-generation answer; this package supplies both halves:
//
//   - Routing: a thin proxy consistent-hashes the registered-domain
//     suffix space across N nodes with R-way replication (ring.go).
//     Each request forwards to its shard's replicas with bounded
//     retries, a hedged second read after a latency budget, and
//     graceful shedding with the same 429/503/504 taxonomy as
//     internal/serve when a shard is fully down. Answers produced off
//     the shard's replica set carry an explicit X-Hoiho-Degraded header
//     rather than being silently misrouted.
//
//   - Health: every member is probed at /readyz on an exponential
//     backoff with jitter (member.go); forwarding failures mark a node
//     unhealthy immediately, so failover reacts at request latency and
//     the probe loop handles recovery.
//
//   - Rollout: a two-phase, cluster-wide corpus swap (rollout.go).
//     Prepare ships the corpus (HBC preferred) into every node's side
//     buffer; validate requires every node to ack the same fingerprint
//     and an unmoved serving generation (the X-Hoiho-Corpus /
//     X-Hoiho-Generation headers are the proof); commit publishes
//     everywhere atomically. Any nack, timeout, or partial failure
//     aborts the epoch — committed nodes are rolled back through the
//     existing /-/rollback path — so no client ever observes a
//     generation that was not committed cluster-wide.
//
//   - Membership: node join/leave rebuilds the hash ring and publishes
//     it with one atomic pointer swap. In-flight requests finish on the
//     ring they started with (every node serves the full corpus, so a
//     stale ring is a locality miss, never a wrong answer); new
//     arrivals route on the new ring. A joining node is warmed — probed
//     until ready — before the flip.
package cluster

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hoiho/internal/psl"
)

// Defaults for the zero Config fields.
const (
	DefaultVNodes   = 64
	DefaultReplicas = 2
)

// Config sizes the router. The zero value of every field gets a
// production-sane default from NewRouter.
type Config struct {
	// Nodes are the hoihod base URLs forming the initial membership,
	// e.g. "http://10.0.0.1:8080". At least one is required.
	Nodes []string
	// Replicas is R: how many distinct nodes own each shard (default 2).
	Replicas int
	// VNodes is the number of virtual points each node contributes to
	// the hash ring (default 64).
	VNodes int
	// ProbeInterval is the healthy-state readiness probe period
	// (default 1s). Failures back off exponentially from here.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readiness probe (default 500ms).
	ProbeTimeout time.Duration
	// ProbeMaxBackoff caps the unhealthy-state probe backoff
	// (default 15s).
	ProbeMaxBackoff time.Duration
	// HedgeAfter is the latency budget before a single-extraction read
	// is hedged to the next replica (default 25ms).
	HedgeAfter time.Duration
	// TryTimeout bounds one forwarding attempt (default 2s).
	TryTimeout time.Duration
	// RequestTimeout bounds one client request end to end, across every
	// retry and hedge (default 5s).
	RequestTimeout time.Duration
	// MaxAttempts bounds how many nodes one request may be forwarded to
	// (default Replicas+1: every replica plus one degraded fallback).
	MaxAttempts int
	// RolloutPhaseTimeout bounds each per-node call of each rollout
	// phase (default 15s).
	RolloutPhaseTimeout time.Duration
	// JournalPath is a directory where the rollout coordinator journals
	// epoch state and the committed corpus (journal.go). Empty disables
	// journaling: rollouts ship full corpora only, crash recovery is
	// manual, and anti-entropy is unavailable.
	JournalPath string
	// AntiEntropyInterval is the period of the self-healing sweep that
	// compares each member's live fingerprint against the journaled
	// committed target and repairs divergent nodes (antientropy.go).
	// Zero disables the sweep; a positive value requires JournalPath.
	AntiEntropyInterval time.Duration
	// MaxBatchBytes caps a proxied POST /extract body (default 8 MiB).
	MaxBatchBytes int64
	// RetryAfter is the base Retry-After hint on shed responses
	// (default 1s); emitted values are jittered across [base, 2*base].
	RetryAfter time.Duration
	// PSL is the public suffix list used to reduce hostnames to their
	// registered-domain shard key; nil uses psl.Default().
	PSL *psl.List
	// Log receives membership, failover, and rollout events; nil
	// discards them.
	Log *log.Logger
}

// view is one immutable membership snapshot: the member set and the
// ring built from it. Requests load the pointer once and route entirely
// on that snapshot, so a concurrent join/leave can never tear the
// member list from the ring that indexes it.
type view struct {
	members []*member          // sorted by name
	byName  map[string]*member // name -> member
	ring    *Ring
}

// Router is the cluster front end: an http.Handler that shards,
// forwards, fails over, and coordinates rollouts. Create one with
// NewRouter, call Start to launch health probing, mount Handler, and
// cancel Start's context (then Wait) to shut down.
type Router struct {
	cfg    Config
	client *http.Client
	list   *psl.List

	view atomic.Pointer[view]

	// adminMu serializes membership changes, rollouts, and anti-entropy
	// sweeps: the protocol is one epoch at a time, and a ring flip
	// mid-rollout would change the member set between phases.
	adminMu sync.Mutex

	// journal is the rollout crash-recovery log (nil when disabled),
	// and epoch the monotonic rollout epoch counter, seeded from the
	// journal's last record so epochs never repeat across coordinator
	// restarts.
	journal *journal
	epoch   atomic.Uint64

	// runCtx is Start's context; probe loops for members joining later
	// derive from it so one cancellation stops everything.
	runCtx atomic.Pointer[context.Context]

	wg    sync.WaitGroup // probe loops
	stats routerCounters
}

// routerCounters is the router's monotonic stats block.
type routerCounters struct {
	requests  atomic.Uint64 // client requests received
	forwards  atomic.Uint64 // forwarding attempts launched
	retries   atomic.Uint64 // failover attempts after a failed forward
	hedges    atomic.Uint64 // hedged reads launched on the latency budget
	degraded  atomic.Uint64 // responses served off the shard's replica set
	shed      atomic.Uint64 // requests shed (all candidates exhausted)
	rollouts  atomic.Uint64 // committed rollout epochs
	aborted   atomic.Uint64 // aborted rollout epochs
	joins     atomic.Uint64 // nodes joined
	leaves    atomic.Uint64 // nodes left
	unhealthy atomic.Uint64 // passive health demotions from forward failures

	sweeps      atomic.Uint64 // anti-entropy sweeps run
	repairs     atomic.Uint64 // divergent nodes repaired by anti-entropy
	repairFails atomic.Uint64 // anti-entropy repair attempts that failed
}

// NewRouter validates cfg, applies defaults, and builds the initial
// membership and ring. Health probing does not start until Start.
//
//hoiho:ctxflow pure validation and construction over the configured node list; no I/O and nothing long-running until Start(ctx)
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, ErrNoMembers
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.ProbeMaxBackoff <= 0 {
		cfg.ProbeMaxBackoff = 15 * time.Second
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = 25 * time.Millisecond
	}
	if cfg.TryTimeout <= 0 {
		cfg.TryTimeout = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = cfg.Replicas + 1
	}
	if cfg.RolloutPhaseTimeout <= 0 {
		cfg.RolloutPhaseTimeout = 15 * time.Second
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 8 << 20
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.AntiEntropyInterval > 0 && cfg.JournalPath == "" {
		return nil, fmt.Errorf("cluster: anti-entropy requires a journal path (the journaled committed corpus is the repair source)")
	}
	list := cfg.PSL
	if list == nil {
		list = psl.Default()
	}
	rt := &Router{
		cfg:    cfg,
		list:   list,
		client: &http.Client{}, // per-attempt contexts bound every call
	}
	if cfg.JournalPath != "" {
		j, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		rt.journal = j
		st, err := j.load()
		if err != nil {
			return nil, err
		}
		if st != nil {
			rt.epoch.Store(st.Epoch)
		}
	}
	members := make([]*member, 0, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		m, err := parseMember(n)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	v, err := buildView(members, cfg.VNodes, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	rt.view.Store(v)
	return rt, nil
}

// parseMember validates a node base URL and wraps it as a member.
func parseMember(raw string) (*member, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("cluster: node %q: URL scheme must be http or https", raw)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("cluster: node %q: URL has no host", raw)
	}
	return &member{name: raw, base: u}, nil
}

// buildView assembles a membership snapshot: members sorted by name,
// the lookup map, and the ring over their names.
func buildView(members []*member, vnodes, repl int) (*view, error) {
	sorted := append([]*member(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	names := make([]string, len(sorted))
	byName := make(map[string]*member, len(sorted))
	for i := 0; i < len(sorted); i++ {
		names[i] = sorted[i].name
		byName[sorted[i].name] = sorted[i]
	}
	ring, err := NewRing(names, vnodes, repl)
	if err != nil {
		return nil, err
	}
	return &view{members: sorted, byName: byName, ring: ring}, nil
}

// Start launches one readiness probe loop per member, plus the
// anti-entropy sweep when configured. The loops (and those of members
// joining later) stop when ctx is cancelled; call Wait to block until
// they have all exited.
func (rt *Router) Start(ctx context.Context) {
	rt.runCtx.Store(&ctx)
	v := rt.view.Load()
	for _, m := range v.members {
		rt.startProbe(ctx, m)
	}
	if rt.journal != nil && rt.cfg.AntiEntropyInterval > 0 {
		rt.wg.Add(1)
		go rt.antiEntropyLoop(ctx)
	}
}

// Wait blocks until every probe loop has exited — the shutdown
// companion to cancelling Start's context.
func (rt *Router) Wait() { rt.wg.Wait() }

// startProbe launches m's readiness loop under ctx. The member's cancel
// tears down just this loop (leave), while ctx tears down all of them.
func (rt *Router) startProbe(ctx context.Context, m *member) {
	probeCtx, cancel := context.WithCancel(ctx)
	m.cancel = cancel
	rt.wg.Add(1)
	go rt.probeLoop(probeCtx, m)
}

// Join adds a node to the cluster. The node is warmed first — probed
// until it reports ready, bounded by ctx — and only then does the ring
// flip, so a shard never gains an owner that cannot serve. In-flight
// requests keep routing on the snapshot they loaded; nothing drops.
func (rt *Router) Join(ctx context.Context, nodeURL string) error {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	v := rt.view.Load()
	if _, ok := v.byName[nodeURL]; ok {
		return fmt.Errorf("cluster: join %s: %w", nodeURL, ErrMemberExists)
	}
	m, err := parseMember(nodeURL)
	if err != nil {
		return err
	}
	// Warm: the node must answer /readyz before it owns any shard.
	if err := rt.warm(ctx, m); err != nil {
		return fmt.Errorf("cluster: join %s: warming: %w", nodeURL, err)
	}
	m.healthy.Store(true)
	nv, err := buildView(append(append([]*member(nil), v.members...), m), rt.cfg.VNodes, rt.cfg.Replicas)
	if err != nil {
		return err
	}
	if pctx := rt.runCtx.Load(); pctx != nil {
		rt.startProbe(*pctx, m)
	}
	rt.view.Store(nv)
	rt.stats.joins.Add(1)
	rt.logf("join: %s (members now %d)", nodeURL, len(nv.members))
	return nil
}

// warm polls the candidate's /readyz until it answers 200, bounded by
// ctx. The poll is tight (ProbeInterval) because join is an operator
// action that should converge fast.
func (rt *Router) warm(ctx context.Context, m *member) error {
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		if rt.probe(ctx, m) {
			return nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Leave removes a node from the cluster: the ring flips first (new
// arrivals stop routing to it), then the node's probe loop stops.
// Requests already in flight toward the departing node finish normally
// — the operator drains and stops the node afterwards, which is the
// "drain old owner" half of the re-sharding contract.
func (rt *Router) Leave(nodeURL string) error {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	v := rt.view.Load()
	m, ok := v.byName[nodeURL]
	if !ok {
		return fmt.Errorf("cluster: leave %s: %w", nodeURL, ErrMemberUnknown)
	}
	if len(v.members) == 1 {
		return fmt.Errorf("cluster: leave %s: removing the last member would empty the cluster", nodeURL)
	}
	rest := make([]*member, 0, len(v.members)-1)
	for _, om := range v.members {
		if om != m {
			rest = append(rest, om)
		}
	}
	nv, err := buildView(rest, rt.cfg.VNodes, rt.cfg.Replicas)
	if err != nil {
		return err
	}
	rt.view.Store(nv)
	if m.cancel != nil {
		m.cancel()
	}
	rt.stats.leaves.Add(1)
	rt.logf("leave: %s (members now %d)", nodeURL, len(nv.members))
	return nil
}

// shardKey reduces a hostname to its consistent-hash key: the
// registered domain when the PSL knows the suffix, the whole hostname
// otherwise (unknown-TLD hosts still shard deterministically).
func (rt *Router) shardKey(host string) string {
	if reg, ok := rt.list.RegisteredDomain(host); ok {
		return reg
	}
	return host
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Log != nil {
		rt.cfg.Log.Printf(format, args...)
	}
}
