package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hoiho/internal/faultinject"
)

// extractReply mirrors the node's extraction response body.
type extractReply struct {
	Hostname string `json:"hostname"`
	Found    bool   `json:"found"`
	ASN      uint32 `json:"asn"`
}

// doGet runs one request through the router handler and decodes it.
func doGet(t testing.TB, rt *Router, target string) (*httptest.ResponseRecorder, extractReply) {
	t.Helper()
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, httptest.NewRequest("GET", target, nil))
	var rep extractReply
	if w.Code == 200 {
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			t.Fatalf("bad extraction JSON %q: %v", w.Body.String(), err)
		}
	}
	return w, rep
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err != ErrNoMembers {
		t.Errorf("NewRouter without nodes = %v, want ErrNoMembers", err)
	}
	if _, err := NewRouter(Config{Nodes: []string{"ftp://x"}}); err == nil {
		t.Error("NewRouter must reject a non-http node URL")
	}
	if _, err := NewRouter(Config{Nodes: []string{"http://"}}); err == nil {
		t.Error("NewRouter must reject a hostless node URL")
	}
}

// TestRouterForward: a request reaches its shard's primary owner, the
// response carries the node's corpus stamp plus the router's identity
// header, and no degraded marker appears on a healthy cluster.
func TestRouterForward(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	fpFirst := fingerprintOf(t, "first")

	host := "as7-pod9.cluster3.net"
	w, rep := doGet(t, rt, "/extract?host="+host)
	if w.Code != 200 {
		t.Fatalf("GET /extract = %d: %s", w.Code, w.Body.String())
	}
	if !rep.Found || rep.ASN != 7 {
		t.Errorf("extraction = %+v, want ASN 7 from the first-variant corpus", rep)
	}
	if got := w.Header().Get("X-Hoiho-Corpus"); got != fpFirst {
		t.Errorf("X-Hoiho-Corpus = %q, want %q", got, fpFirst)
	}
	if w.Header().Get("X-Hoiho-Degraded") != "" {
		t.Error("healthy cluster must not mark responses degraded")
	}
	node := w.Header().Get("X-Hoiho-Node")
	owners := rt.view.Load().ring.Owners(rt.shardKey(host))
	if node != owners[0] {
		t.Errorf("served by %s, want primary owner %s", node, owners[0])
	}
}

func TestRouterMissingHost(t *testing.T) {
	nodes := newTestNodes(t, 1)
	rt := newTestRouter(t, nodes, nil)
	if w, _ := doGet(t, rt, "/extract"); w.Code != 400 {
		t.Errorf("GET /extract without host = %d, want 400", w.Code)
	}
}

// TestRouterBatch: a batch body forwards whole to one node and comes
// back in input order.
func TestRouterBatch(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	body := "as1-pod2.cluster0.net\nas3-pod4.cluster1.net\n"
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/extract", strings.NewReader(body)))
	if w.Code != 200 {
		t.Fatalf("POST /extract = %d: %s", w.Code, w.Body.String())
	}
	var reps []extractReply
	if err := json.Unmarshal(w.Body.Bytes(), &reps); err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].ASN != 1 || reps[1].ASN != 3 {
		t.Errorf("batch = %+v, want ASNs 1 and 3", reps)
	}
	if w.Header().Get("X-Hoiho-Node") == "" {
		t.Error("batch response must name its serving node")
	}
	w2 := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w2, httptest.NewRequest("POST", "/extract", strings.NewReader("\n\n")))
	if w2.Code != 400 {
		t.Errorf("empty batch = %d, want 400", w2.Code)
	}
}

// TestRouterFailover: when a shard's primary cannot be reached, the
// request lands on the other replica — same corpus, no error, no
// degraded marker (a replica is a full owner).
func TestRouterFailover(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	host := "as5-pod1.cluster2.net"
	owners := rt.view.Load().ring.Owners(rt.shardKey(host))

	defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterForward, Key: owners[0], Kind: faultinject.KindError, Prob: 1},
	}})()

	w, rep := doGet(t, rt, "/extract?host="+host)
	if w.Code != 200 {
		t.Fatalf("failover GET = %d: %s", w.Code, w.Body.String())
	}
	if !rep.Found || rep.ASN != 5 {
		t.Errorf("failover extraction = %+v", rep)
	}
	if got := w.Header().Get("X-Hoiho-Node"); got != owners[1] {
		t.Errorf("served by %s, want replica %s", got, owners[1])
	}
	if w.Header().Get("X-Hoiho-Degraded") != "" {
		t.Error("a replica-served response is not degraded")
	}
	if rt.stats.retries.Load() == 0 {
		t.Error("failover must account a retry")
	}
}

// TestRouterDegraded: with R=1 and the sole owner down, the request is
// answered by a non-owner and says so.
func TestRouterDegraded(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, func(c *Config) { c.Replicas = 1; c.MaxAttempts = 3 })
	host := "as8-pod2.cluster4.net"
	owner := rt.view.Load().ring.Owner(rt.shardKey(host))

	defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterForward, Key: owner, Kind: faultinject.KindError, Prob: 1},
	}})()

	w, rep := doGet(t, rt, "/extract?host="+host)
	if w.Code != 200 {
		t.Fatalf("degraded GET = %d: %s", w.Code, w.Body.String())
	}
	if !rep.Found || rep.ASN != 8 {
		t.Errorf("degraded extraction = %+v", rep)
	}
	if w.Header().Get("X-Hoiho-Degraded") == "" {
		t.Error("an off-replica answer must carry X-Hoiho-Degraded")
	}
	if got := w.Header().Get("X-Hoiho-Node"); got == owner {
		t.Errorf("served by the dead owner %s", got)
	}
}

// TestRouterShed: with every node unreachable the request sheds as 503
// with a jittered Retry-After, matching the serve taxonomy.
func TestRouterShed(t *testing.T) {
	nodes := newTestNodes(t, 2)
	rt := newTestRouter(t, nodes, nil)
	defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterForward, Kind: faultinject.KindError, Prob: 1},
	}})()
	w, _ := doGet(t, rt, "/extract?host=as1-pod1.cluster0.net")
	if w.Code != 503 {
		t.Fatalf("all-down GET = %d, want 503", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", w.Header().Get("Retry-After"))
	}
	if !strings.Contains(w.Body.String(), "unavailable") {
		t.Errorf("shed body = %q", w.Body.String())
	}
}

// TestRouterHedge: a stalled primary is hedged to the next replica
// after the latency budget instead of waiting out the stall.
func TestRouterHedge(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, func(c *Config) { c.HedgeAfter = 10 * time.Millisecond })
	host := "as2-pod6.cluster5.net"
	owners := rt.view.Load().ring.Owners(rt.shardKey(host))

	defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterForward, Key: owners[0], Kind: faultinject.KindStall,
			Prob: 1, Stall: 2 * time.Second},
	}})()

	start := time.Now()
	w, rep := doGet(t, rt, "/extract?host="+host)
	if w.Code != 200 {
		t.Fatalf("hedged GET = %d: %s", w.Code, w.Body.String())
	}
	if !rep.Found || rep.ASN != 2 {
		t.Errorf("hedged extraction = %+v", rep)
	}
	if got := w.Header().Get("X-Hoiho-Node"); got != owners[1] {
		t.Errorf("served by %s, want hedge target %s", got, owners[1])
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedged request took %v; it waited out the stall", elapsed)
	}
	if rt.stats.hedges.Load() == 0 {
		t.Error("hedge must be accounted")
	}
}

// TestRouterReadyz: not ready before any probe succeeds, ready after.
func TestRouterReadyz(t *testing.T) {
	nodes := newTestNodes(t, 2)
	urls := []string{nodes[0].url(), nodes[1].url()}
	rt, err := NewRouter(Config{Nodes: urls, ProbeInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != 503 {
		t.Errorf("readyz before probes = %d, want 503", w.Code)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt.Start(ctx)
	defer func() {
		cancel()
		rt.Wait()
		rt.client.CloseIdleConnections()
	}()
	waitHealthy(t, rt, 2)
	w2 := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w2, httptest.NewRequest("GET", "/readyz", nil))
	if w2.Code != 200 {
		t.Errorf("readyz after probes = %d, want 200", w2.Code)
	}
	w3 := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w3, httptest.NewRequest("GET", "/healthz", nil))
	if w3.Code != 200 {
		t.Errorf("healthz = %d, want 200", w3.Code)
	}
}

// TestRouterJoinLeave: a joined node enters the ring only after
// warming; a left node exits it; the edges (duplicate join, unknown or
// last-member leave) are rejected.
func TestRouterJoinLeave(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, []*testNode{nodes[0], nodes[1]}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if err := rt.Join(ctx, nodes[2].url()); err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := len(rt.view.Load().members); got != 3 {
		t.Fatalf("members after join = %d, want 3", got)
	}
	if err := rt.Join(ctx, nodes[2].url()); err == nil {
		t.Error("duplicate join must fail")
	}
	if _, rep := doGet(t, rt, "/extract?host=as4-pod4.cluster6.net"); !rep.Found {
		t.Error("extraction must keep working across a join")
	}

	if err := rt.Leave(nodes[0].url()); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := len(rt.view.Load().members); got != 2 {
		t.Fatalf("members after leave = %d, want 2", got)
	}
	for _, m := range rt.view.Load().members {
		if m.name == nodes[0].url() {
			t.Error("left node still in the view")
		}
	}
	if err := rt.Leave("http://never-was-a-member"); err == nil {
		t.Error("leaving an unknown node must fail")
	}
	if err := rt.Leave(nodes[1].url()); err != nil {
		t.Fatalf("leave second: %v", err)
	}
	if err := rt.Leave(nodes[2].url()); err == nil {
		t.Error("leaving the last member must fail")
	}
}

// TestClusterStatus: /-/cluster reports membership, ring shape, and the
// counters.
func TestClusterStatus(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	doGet(t, rt, "/extract?host=as1-pod1.cluster0.net")
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/-/cluster", nil))
	if w.Code != 200 {
		t.Fatalf("GET /-/cluster = %d", w.Code)
	}
	var st ClusterStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 3 || st.Replication != DefaultReplicas {
		t.Errorf("status = %+v", st)
	}
	for _, m := range st.Members {
		if !m.Healthy {
			t.Errorf("member %s unhealthy in status", m.Node)
		}
	}
	if st.Requests == 0 || st.Forwards == 0 {
		t.Errorf("counters not accounted: %+v", st)
	}
}

// TestRetryAfterJitter: the shed hint spreads across [base, 2*base] so
// synchronized clients do not return as a thundering herd.
func TestRetryAfterJitter(t *testing.T) {
	distinct := map[string]bool{}
	for i := 0; i < 64; i++ {
		v := retryAfterSeconds(2 * time.Second)
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer", v)
		}
		if n < 2 || n > 4 {
			t.Fatalf("Retry-After %d outside [2, 4]", n)
		}
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Errorf("64 hints collapsed to %d distinct value(s); jitter is not spreading", len(distinct))
	}
}

// TestShardKey: PSL-known suffixes shard on their registered domain so
// every host of one operator's domain lands on the same replica set.
func TestShardKey(t *testing.T) {
	nodes := newTestNodes(t, 1)
	rt := newTestRouter(t, nodes, nil)
	a := rt.shardKey("ae1.cr2.example.net")
	b := rt.shardKey("xe0.br1.example.net")
	if a != b {
		t.Errorf("shard keys %q and %q differ for one registered domain", a, b)
	}
	if got := rt.shardKey("host.weird-unknown-tld-zzz"); got != "host.weird-unknown-tld-zzz" {
		t.Errorf("unknown suffix key = %q, want the whole hostname", got)
	}
	_ = fmt.Sprint(a)
}
