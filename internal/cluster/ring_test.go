package cluster

import (
	"errors"
	"fmt"
	"testing"
)

func mustRing(t testing.TB, nodes []string, vnodes, repl int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes, repl)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("domain%d.example.net", i)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8, 2); err == nil {
		t.Error("NewRing with no nodes must fail")
	}
	if _, err := NewRing([]string{"a", "a"}, 8, 2); err == nil {
		t.Error("NewRing with duplicate nodes must fail")
	}
	if _, err := NewRing([]string{"a", ""}, 8, 2); err == nil {
		t.Error("NewRing with an empty node name must fail")
	}
}

// TestRingDeterminism: the same membership yields the same routing
// regardless of input order — routers built independently agree.
func TestRingDeterminism(t *testing.T) {
	a := mustRing(t, []string{"n1", "n2", "n3", "n4"}, 32, 2)
	b := mustRing(t, []string{"n4", "n2", "n1", "n3"}, 32, 2)
	for _, key := range sampleKeys(200) {
		oa, ob := a.Owners(key), b.Owners(key)
		if fmt.Sprint(oa) != fmt.Sprint(ob) {
			t.Fatalf("key %q: owners %v vs %v across input orders", key, oa, ob)
		}
	}
}

// TestRingOwnersDistinct: every key gets exactly R distinct owners, and
// replication is capped at the node count.
func TestRingOwnersDistinct(t *testing.T) {
	r := mustRing(t, []string{"n1", "n2", "n3"}, 32, 2)
	for _, key := range sampleKeys(500) {
		owners := r.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("key %q: %d owners, want 2", key, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %q: duplicate owner %q", key, owners[0])
		}
	}
	small := mustRing(t, []string{"only"}, 32, 3)
	if got := small.Replication(); got != 1 {
		t.Errorf("replication on a 1-node ring = %d, want 1", got)
	}
	if owners := small.Owners("k"); len(owners) != 1 || owners[0] != "only" {
		t.Errorf("1-node owners = %v", owners)
	}
}

// TestRingBalance: with enough virtual points, no node's primary share
// collapses — every node carries a meaningful slice of the key space.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := mustRing(t, nodes, DefaultVNodes, 1)
	counts := map[string]int{}
	keys := sampleKeys(10000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.05 {
			t.Errorf("node %s owns %.1f%% of keys; balance collapsed (%v)", n, share*100, counts)
		}
	}
}

// TestRingMinimalMovement: removing one node only moves the keys that
// node owned — consistent hashing's whole point. Every key whose
// primary survives keeps its primary.
func TestRingMinimalMovement(t *testing.T) {
	before := mustRing(t, []string{"n1", "n2", "n3", "n4", "n5"}, DefaultVNodes, 2)
	after := mustRing(t, []string{"n1", "n2", "n3", "n4"}, DefaultVNodes, 2)
	moved := 0
	keys := sampleKeys(5000)
	for _, key := range keys {
		was := before.Owner(key)
		now := after.Owner(key)
		if was == "n5" {
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %q: primary moved %s -> %s though %s survived", key, was, now, was)
		}
	}
	if moved == 0 {
		t.Error("no keys were owned by the removed node; the test proved nothing")
	}
}

// TestRingErrorTaxonomy: sentinel classification via errors.Is works
// through the router's wrapping.
func TestRingErrorTaxonomy(t *testing.T) {
	fe := &ForwardError{Node: "n1", Err: ErrShardUnavailable}
	if !errors.Is(fe, ErrShardUnavailable) {
		t.Error("ForwardError must unwrap to its cause")
	}
	re := &RolloutError{Phase: "prepare", Node: "n1", Err: ErrNoMembers}
	if !errors.Is(re, ErrNoMembers) {
		t.Error("RolloutError must unwrap to its cause")
	}
}
