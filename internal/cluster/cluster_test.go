package cluster

// Shared test rig: real serve.Server nodes behind httptest listeners,
// fronted by a real Router. The corpora mirror internal/serve's test
// scheme — hostnames as<A>-pod<B>.cluster<N>.net carry two numbers, and
// each corpus variant captures a different one — so any response's ASN
// and X-Hoiho-Corpus stamp identify exactly which corpus produced it.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hoiho/internal/extract"
	"hoiho/internal/serve"
)

const nSuffixes = 8

func corpusJSON(variant string) string {
	var sb strings.Builder
	sb.WriteString("[\n")
	for i := 0; i < nSuffixes; i++ {
		if i > 0 {
			sb.WriteString(",\n")
		}
		var re string
		switch variant {
		case "first":
			re = fmt.Sprintf(`^as(\\d+)-pod\\d+\\.cluster%d\\.net$`, i)
		case "second":
			re = fmt.Sprintf(`^as\\d+-pod(\\d+)\\.cluster%d\\.net$`, i)
		case "third":
			re = fmt.Sprintf(`^asn(\\d+)\\.cluster%d\\.net$`, i)
		default:
			panic("unknown variant " + variant)
		}
		fmt.Fprintf(&sb, `  {"suffix":"cluster%d.net","regexes":["%s"],"class":"good"}`, i, re)
	}
	sb.WriteString("\n]\n")
	return sb.String()
}

// fingerprintOf returns the X-Hoiho-Corpus value a node serving the
// variant will stamp.
func fingerprintOf(t testing.TB, variant string) string {
	t.Helper()
	c, err := extract.Load(strings.NewReader(corpusJSON(variant)))
	if err != nil {
		t.Fatal(err)
	}
	return c.FingerprintString()
}

// nodeMode lets chaos tests break a node's rollout surface from the
// outside, modeling an operator-visible failure without tearing down
// the listener: mode rollout500 nacks every rollout phase, rolloutCrash
// severs the connection mid-request (a node crash as the coordinator
// sees one).
type nodeMode int32

const (
	modeNormal nodeMode = iota
	modeRollout500
	modeRolloutCrash
)

// testNode is one hoihod-equivalent: a real serve.Server on its own
// corpus file, listening on a real port.
type testNode struct {
	srv  *serve.Server
	ts   *httptest.Server
	path string // corpus file
	mode atomic.Int32
}

func (n *testNode) url() string { return n.ts.URL }

func (n *testNode) setMode(m nodeMode) { n.mode.Store(int32(m)) }

// middleware applies the node's failure mode to rollout paths.
func (n *testNode) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/-/rollout/") {
			switch nodeMode(n.mode.Load()) {
			case modeRollout500:
				http.Error(w, "injected node failure", http.StatusInternalServerError)
				return
			case modeRolloutCrash:
				panic(http.ErrAbortHandler)
			}
		}
		next.ServeHTTP(w, r)
	})
}

// newTestNodes boots n nodes, all serving the "first" corpus variant.
func newTestNodes(t testing.TB, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		path := filepath.Join(t.TempDir(), "ncs.json")
		if err := os.WriteFile(path, []byte(corpusJSON("first")), 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(serve.Config{CorpusPath: path})
		if err != nil {
			t.Fatal(err)
		}
		node := &testNode{srv: srv, path: path}
		node.ts = httptest.NewServer(node.middleware(srv.Handler()))
		t.Cleanup(node.ts.Close)
		nodes[i] = node
	}
	return nodes
}

// newTestRouter fronts the nodes with a Router tuned for test speed and
// starts health probing; teardown stops the loops and drains the
// client's connection pool so leaktest sees a clean process.
func newTestRouter(t testing.TB, nodes []*testNode, mod func(*Config)) *Router {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.url()
	}
	cfg := Config{
		Nodes:               urls,
		ProbeInterval:       20 * time.Millisecond,
		ProbeTimeout:        250 * time.Millisecond,
		ProbeMaxBackoff:     100 * time.Millisecond,
		HedgeAfter:          25 * time.Millisecond,
		TryTimeout:          2 * time.Second,
		RequestTimeout:      5 * time.Second,
		RolloutPhaseTimeout: 2 * time.Second,
	}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt.Start(ctx)
	t.Cleanup(func() {
		cancel()
		rt.Wait()
		rt.client.CloseIdleConnections()
	})
	waitHealthy(t, rt, len(nodes))
	return rt
}

// waitHealthy blocks until want members are healthy (probes are fast in
// tests; this converges in a few intervals).
func waitHealthy(t testing.TB, rt *Router, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := 0
		for _, m := range rt.view.Load().members {
			if m.healthy.Load() {
				n++
			}
		}
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d members became healthy", n, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
