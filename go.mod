module hoiho

go 1.22
