// Command hoihoc is the hoiho cluster router: it fronts a fleet of
// hoihod nodes, consistent-hashing the registered-domain suffix space
// across them with R-way replication, failing over between replicas,
// hedging slow reads, and coordinating two-phase cluster-wide corpus
// rollouts.
//
// Endpoints:
//
//	GET  /extract?host=<hostname>   single extraction, forwarded to the
//	                                host's shard (hedged, failed over)
//	POST /extract                   batch, forwarded whole to one node
//	GET  /healthz                   router liveness
//	GET  /readyz                    503 until at least one node is healthy
//	GET  /-/cluster                 membership health, ring shape, counters
//	POST /-/rollout                 two-phase corpus rollout: body is the
//	                                corpus (HBC or JSON) or, with -journal,
//	                                an HBD delta from `hoiho -diff`; commits
//	                                on every node or aborts on all of them
//	POST /-/join?node=<url>         warm a node, then add it to the ring
//	POST /-/leave?node=<url>        remove a node from the ring
//
// Forwarded responses carry X-Hoiho-Node (which node answered) on top
// of the node's own X-Hoiho-Corpus/X-Hoiho-Generation stamps; answers
// served off the shard's replica set (all owners down) additionally
// carry X-Hoiho-Degraded.
//
// Example (3-node local cluster, R=2):
//
//	hoihod -corpus ncs.json -addr :8081 &
//	hoihod -corpus ncs.json -addr :8082 &
//	hoihod -corpus ncs.json -addr :8083 &
//	hoihoc -addr :8080 -nodes http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	       -journal /var/lib/hoihoc/journal -anti-entropy 30s
//	curl 'localhost:8080/extract?host=ae1-0.cr2.example.net'
//	curl -X POST --data-binary @ncs.hbc 'localhost:8080/-/rollout'
//	hoiho -diff ncs.hbc ncs-v2.hbc -o patch.hbd
//	curl -X POST --data-binary @patch.hbd 'localhost:8080/-/rollout'
//
// With -journal, every epoch's state (phase, manifest, per-node delta
// plan) is journaled before it advances: a coordinator killed
// mid-rollout resumes on restart — rolling the epoch forward if the
// commit record is durable, aborting it cleanly otherwise — and the
// journal's committed corpus is the base for computing per-node deltas
// and for the -anti-entropy sweep, which repairs nodes that diverged or
// rejoined stale without operator action.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hoiho/internal/cluster"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hoihoc:", err)
		os.Exit(1)
	}
}

// run boots the router and blocks until a termination signal (or ctx
// cancellation, the test path) shuts it down.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hoihoc", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	nodes := fs.String("nodes", "", "comma-separated hoihod base URLs (required)")
	replicas := fs.Int("replicas", cluster.DefaultReplicas, "replicas per shard (R)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual ring points per node")
	probeInterval := fs.Duration("probe-interval", time.Second, "healthy-state readiness probe period")
	probeTimeout := fs.Duration("probe-timeout", 500*time.Millisecond, "single readiness probe deadline")
	hedgeAfter := fs.Duration("hedge-after", 25*time.Millisecond, "latency budget before hedging a read to the next replica")
	tryTimeout := fs.Duration("try-timeout", 2*time.Second, "single forwarding attempt deadline")
	reqTimeout := fs.Duration("request-timeout", 5*time.Second, "end-to-end client request deadline")
	maxAttempts := fs.Int("max-attempts", 0, "maximum nodes one request may be forwarded to (0 = replicas+1)")
	rolloutTimeout := fs.Duration("rollout-timeout", 15*time.Second, "per-node deadline for each rollout phase")
	journalPath := fs.String("journal", "", "directory for the rollout journal; enables delta rollouts and crash recovery")
	antiEntropy := fs.Duration("anti-entropy", 0, "anti-entropy sweep period repairing divergent nodes (0 = off; requires -journal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: hoihoc -nodes <url,url,...> [flags]")
	}
	if *nodes == "" {
		return fmt.Errorf("-nodes is required (comma-separated hoihod base URLs)")
	}
	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}

	logger := log.New(out, "hoihoc: ", log.LstdFlags)
	rt, err := cluster.NewRouter(cluster.Config{
		Nodes:               nodeList,
		Replicas:            *replicas,
		VNodes:              *vnodes,
		ProbeInterval:       *probeInterval,
		ProbeTimeout:        *probeTimeout,
		HedgeAfter:          *hedgeAfter,
		TryTimeout:          *tryTimeout,
		RequestTimeout:      *reqTimeout,
		MaxAttempts:         *maxAttempts,
		RolloutPhaseTimeout: *rolloutTimeout,
		JournalPath:         *journalPath,
		AntiEntropyInterval: *antiEntropy,
		Log:                 logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("routing %d nodes (R=%d, %d vnodes) on %s",
		len(nodeList), *replicas, *vnodes, ln.Addr())

	termCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Health probing runs under its own cancellable context so shutdown
	// can stop the loops and wait for them.
	probeCtx, cancelProbes := context.WithCancel(context.Background())
	defer cancelProbes()
	rt.Start(probeCtx)

	// If a previous coordinator died mid-rollout, finish its epoch from
	// the journal before accepting new work: roll forward if the commit
	// record is durable, abort cleanly otherwise.
	if *journalPath != "" {
		if err := rt.Resume(termCtx); err != nil {
			cancelProbes()
			rt.Wait()
			return fmt.Errorf("journal resume: %w", err)
		}
	}

	httpSrv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		cancelProbes()
		rt.Wait()
		return err
	case <-termCtx.Done():
	}
	logger.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	cancelProbes()
	rt.Wait()
	logger.Printf("stopped")
	return nil
}
