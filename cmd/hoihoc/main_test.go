package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hoiho/internal/serve"
)

// syncWriter lets the test read the router's log while run is writing it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func writeTestCorpus(t *testing.T, path string) {
	t.Helper()
	body := `[{"suffix":"routed.net","regexes":["^as(\\d+)-r\\d+\\.routed\\.net$"],"class":"good"}]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// bootNode starts one in-process hoihod-equivalent for the router to
// front.
func bootNode(t *testing.T) *httptest.Server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ncs.json")
	writeTestCorpus(t, path)
	srv, err := serve.New(serve.Config{CorpusPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var buf syncWriter
	if err := run(ctx, nil, &buf); err == nil || !strings.Contains(err.Error(), "-nodes") {
		t.Errorf("run without -nodes = %v, want a -nodes error", err)
	}
	if err := run(ctx, []string{"-nodes", "http://x", "stray"}, &buf); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("run with stray args = %v, want usage error", err)
	}
	if err := run(ctx, []string{"-nodes", "ftp://bad-scheme"}, &buf); err == nil {
		t.Error("run with a non-http node URL must fail at boot")
	}
}

// TestRunRouteAndShutdown boots two nodes and the router on real
// sockets, routes an extraction through the cluster, and requires a
// clean exit on context cancellation (the SIGTERM path).
func TestRunRouteAndShutdown(t *testing.T) {
	n1, n2 := bootNode(t), bootNode(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncWriter
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-nodes", fmt.Sprintf("%s,%s", n1.URL, n2.URL),
			"-probe-interval", "20ms",
		}, &buf)
	}()

	addrRe := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	var base string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("router exited before listening: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never logged its address:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	if code, _, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	// Readiness follows the probes; poll until at least one node is seen.
	ready := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if code, _, _ := get("/readyz"); code == http.StatusOK {
			ready = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ready {
		t.Fatalf("router never became ready:\n%s", buf.String())
	}

	code, body, hdr := get("/extract?host=as64500-r7.routed.net")
	if code != http.StatusOK || !strings.Contains(body, `"asn": 64500`) {
		t.Fatalf("extract through router = %d %s", code, body)
	}
	if hdr.Get("X-Hoiho-Node") == "" || hdr.Get("X-Hoiho-Corpus") == "" {
		t.Errorf("routed response missing provenance headers: %v", hdr)
	}
	if code, body, _ := get("/-/cluster"); code != http.StatusOK || !strings.Contains(body, `"members"`) {
		t.Errorf("/-/cluster = %d %s", code, body)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("shutdown = %v, want nil\n%s", err, buf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("router did not exit after cancellation:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "stopped") {
		t.Errorf("log missing shutdown confirmation:\n%s", buf.String())
	}
}
