// Command hoihod is the hoiho extraction daemon: it serves a saved
// conventions corpus (the output of `hoiho -save`, JSON or the HBC
// binary form — the format is sniffed, so -corpus and hot reloads
// accept either) as an HTTP service with hot reload, load shedding,
// and graceful drain. An HBC corpus loads pre-compiled, which keeps
// reload pauses short under load.
//
// Endpoints:
//
//	GET  /extract?host=<hostname>   single extraction (JSON)
//	POST /extract                   newline-separated hostnames, batch (JSON)
//	GET  /healthz                   liveness (200 while the process is up)
//	GET  /readyz                    readiness (503 while draining or corpus-less)
//	GET  /statusz                   serving snapshot identity + counters
//	POST /-/reload                  reload the corpus file (also: SIGHUP)
//	POST /-/rollback                republish the previous corpus
//
// Every extraction response carries X-Hoiho-Corpus (content
// fingerprint) and X-Hoiho-Generation headers identifying the exact
// corpus snapshot that produced it.
//
// Lifecycle: SIGHUP triggers a validated hot reload — a corpus that
// fails validation is rejected while the running corpus keeps serving.
// SIGTERM/SIGINT begins a graceful drain: readiness flips to 503, new
// extraction requests get 503s, admitted requests finish under
// -drain-timeout, and the process exits 0.
//
// Example:
//
//	hoiho -save ncs.json training.txt
//	hoihod -corpus ncs.json -addr :8080 &
//	curl 'localhost:8080/extract?host=ae1-0.cr2.example.net'
//	kill -HUP %1     # pick up a re-learned ncs.json
//	kill -TERM %1    # drain and exit 0
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hoiho/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hoihod:", err)
		os.Exit(1)
	}
}

// run boots the daemon and blocks until a termination signal drains it
// (or ctx is cancelled, the test path). The daemon's lifecycle log goes
// to out.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hoihod", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	corpus := fs.String("corpus", "", "saved conventions JSON to serve (required; output of hoiho -save)")
	classes := fs.String("classes", "usable", "which conventions to serve: good, usable, or all")
	maxInflight := fs.Int("max-inflight", 64, "maximum concurrently executing extraction requests")
	maxQueue := fs.Int("max-queue", 256, "maximum requests waiting for admission before shedding")
	queueWait := fs.Duration("queue-wait", 100*time.Millisecond, "maximum time a request may wait for admission")
	reqTimeout := fs.Duration("request-timeout", 5*time.Second, "per-request deadline on extraction endpoints")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long drain waits for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: hoihod -corpus <ncs.json> [flags]")
	}
	if *corpus == "" {
		return fmt.Errorf("-corpus is required (save one with: hoiho -save ncs.json training.txt)")
	}

	logger := log.New(out, "hoihod: ", log.LstdFlags)
	srv, err := serve.New(serve.Config{
		CorpusPath:     *corpus,
		Classes:        *classes,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		Log:            logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	status := srv.StatusNow()
	logger.Printf("serving corpus %s (%d NCs, fingerprint %s) on %s",
		*corpus, status.NCs, status.Fingerprint, ln.Addr())

	// SIGHUP: validated hot reload. A rejected corpus logs and keeps
	// the old one serving; reload never takes the daemon down.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if _, err := srv.Reload(context.Background()); err != nil {
				logger.Printf("SIGHUP reload rejected: %v", err)
			}
		}
	}()

	// SIGTERM/SIGINT (or ctx cancellation): graceful drain.
	termCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		return err
	case <-termCtx.Done():
	}
	logger.Printf("draining: waiting up to %v for in-flight requests", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	// The app-level drain already waited for admitted requests;
	// Shutdown closes the listener and idle connections.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	logger.Printf("drained cleanly; exiting")
	return nil
}
