package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncWriter lets the test read the daemon's log while run is writing it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func writeTestCorpus(t *testing.T, path, capture string) {
	t.Helper()
	var re string
	if capture == "first" {
		re = `^as(\\d+)-r\\d+\\.daemon\\.net$`
	} else {
		re = `^as\\d+-r(\\d+)\\.daemon\\.net$`
	}
	body := fmt.Sprintf(`[{"suffix":"daemon.net","regexes":["%s"],"class":"good"}]`, re)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var buf syncWriter
	if err := run(ctx, nil, &buf); err == nil || !strings.Contains(err.Error(), "-corpus") {
		t.Errorf("run without -corpus = %v, want a -corpus error", err)
	}
	if err := run(ctx, []string{"-corpus", "x.json", "stray"}, &buf); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("run with stray args = %v, want usage error", err)
	}
	missing := filepath.Join(t.TempDir(), "missing.json")
	if err := run(ctx, []string{"-corpus", missing}, &buf); err == nil {
		t.Error("run with a missing corpus must fail at boot")
	}
}

// TestRunServeReloadDrain is the in-process version of the CI smoke
// test: boot the daemon on a real socket, extract, hot-reload via
// SIGHUP, then cancel the lifecycle context (the SIGTERM path) and
// require a clean, drained exit.
func TestRunServeReloadDrain(t *testing.T) {
	corpus := filepath.Join(t.TempDir(), "ncs.json")
	writeTestCorpus(t, corpus, "first")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncWriter
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-corpus", corpus, "-addr", "127.0.0.1:0", "-drain-timeout", "5s",
		}, &buf)
	}()

	// The daemon logs its bound address; poll for it.
	addrRe := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	var base string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("daemon exited before listening: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged its address:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	if code, body := get("/extract?host=as64500-r7.daemon.net"); code != http.StatusOK || !strings.Contains(body, `"asn": 64500`) {
		t.Fatalf("extract = %d %s, want asn 64500", code, body)
	}

	// Hot reload via SIGHUP: same hostname, the other capture group.
	writeTestCorpus(t, corpus, "second")
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	reloaded := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if code, body := get("/extract?host=as64500-r7.daemon.net"); code == http.StatusOK && strings.Contains(body, `"asn": 7`) {
			reloaded = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !reloaded {
		t.Fatalf("SIGHUP reload never took effect:\n%s", buf.String())
	}

	// SIGTERM path: cancelling the lifecycle context drains and exits 0.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained exit = %v, want nil\n%s", err, buf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after cancellation:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "drained cleanly") {
		t.Errorf("log missing drain confirmation:\n%s", buf.String())
	}
}
