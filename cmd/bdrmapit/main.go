// Command bdrmapit runs the reimplemented bdrmapIT router-ownership
// inference over a traceroute corpus, optionally with Hoiho-learned
// naming conventions (the paper's §5 modification), and prints per-node
// annotations plus the decisions taken for hostnames that disagreed with
// the initial inference.
//
// Inputs:
//
//	-traces  traceroute corpus (traceroute.WriteTo format)   [required]
//	-bgp     BGP table, "prefix|origin" lines                [required]
//	-itdk    ITDK snapshot supplying alias sets and PTRs     [required]
//	-rel     AS relationships (CAIDA as-rel format)          [optional]
//	-orgs    AS-to-organization map, "asn|org" lines         [optional]
//	-ncs     learned conventions JSON (from hoiho -json)     [optional]
//
// Example:
//
//	itdkgen -o itdk.txt -traces tr.txt -bgp bgp.txt -rel rel.txt -orgs orgs.txt
//	hoiho -json -format itdk itdk.txt > ncs.json
//	bdrmapit -itdk itdk.txt -traces tr.txt -bgp bgp.txt -rel rel.txt -orgs orgs.txt -ncs ncs.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"syscall"

	"hoiho/internal/asn"
	"hoiho/internal/bdrmapit"
	"hoiho/internal/bgp"
	"hoiho/internal/core"
	"hoiho/internal/itdk"
	"hoiho/internal/traceroute"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bdrmapit:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bdrmapit", flag.ContinueOnError)
	tracesPath := fs.String("traces", "", "traceroute corpus (required)")
	bgpPath := fs.String("bgp", "", "BGP table file (required)")
	itdkPath := fs.String("itdk", "", "ITDK snapshot for alias sets and PTR records (required)")
	relPath := fs.String("rel", "", "AS relationships file")
	orgsPath := fs.String("orgs", "", "AS-to-organization file")
	ncsPath := fs.String("ncs", "", "learned conventions JSON; enables the §5 modification")
	showDecisions := fs.Bool("decisions", true, "print hostname decisions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracesPath == "" || *bgpPath == "" || *itdkPath == "" {
		return fmt.Errorf("-traces, -bgp, and -itdk are required")
	}

	corpus, err := readWith(*tracesPath, traceroute.Parse)
	if err != nil {
		return err
	}
	table, err := readWith(*bgpPath, bgp.ParseTable)
	if err != nil {
		return err
	}
	snap, err := readWith(*itdkPath, itdk.Parse)
	if err != nil {
		return err
	}

	// Alias sets and PTR records come from the snapshot.
	aliases := itdk.NewAliases()
	hostnames := make(map[netip.Addr]string)
	for _, rec := range snap.Nodes {
		for i, a := range rec.Addrs {
			aliases.Assign(a, rec.ID)
			if rec.Hostnames[i] != "" {
				hostnames[a] = rec.Hostnames[i]
			}
		}
	}
	graph := itdk.BuildGraph(corpus, aliases, table, func(a netip.Addr) string {
		return hostnames[a]
	})
	// The input parses above are the long-haul I/O; bail cleanly if a
	// signal arrived during them rather than starting the annotator.
	if err := ctx.Err(); err != nil {
		return err
	}

	an := &bdrmapit.Annotator{Graph: graph, IXPs: map[asn.ASN]bool{}}
	if *relPath != "" {
		if an.Rel, err = readWith(*relPath, asn.ParseRelationships); err != nil {
			return err
		}
	}
	if *orgsPath != "" {
		if an.Orgs, err = readWith(*orgsPath, asn.ParseOrgs); err != nil {
			return err
		}
	}

	if *ncsPath == "" {
		ann := an.Annotate()
		for _, n := range graph.Nodes {
			fmt.Fprintf(out, "node N%d %s\n", n.ID, ann[n.ID])
		}
		return nil
	}

	data, err := os.ReadFile(*ncsPath)
	if err != nil {
		return err
	}
	ncs, err := core.UnmarshalNCs(data)
	if err != nil {
		return err
	}
	res := an.AnnotateWithNCs(ctx, ncs)
	for _, n := range graph.Nodes {
		marker := ""
		if res.Annotations[n.ID] != res.Initial[n.ID] {
			marker = fmt.Sprintf("  (bdrmapIT inferred %s; hostname evidence)", res.Initial[n.ID])
		}
		fmt.Fprintf(out, "node N%d %s%s\n", n.ID, res.Annotations[n.ID], marker)
	}
	if *showDecisions {
		fmt.Fprintf(out, "# %d interfaces with extracted ASNs; %d decisions\n",
			res.Extractions, len(res.Decisions))
		for _, d := range res.Decisions {
			verdict := "rejected (stale/typo)"
			if d.Used {
				verdict = "used"
			}
			fmt.Fprintf(out, "# decision node=N%d host=%s extracted=%s initial=%s class=%s -> %s\n",
				d.Node, d.Hostname, d.Extracted, d.Initial, d.NCClass, verdict)
		}
	}
	return nil
}

// readWith opens path and parses it with fn.
func readWith[T any](path string, fn func(io.Reader) (T, error)) (T, error) {
	var zero T
	f, err := os.Open(path)
	if err != nil {
		return zero, err
	}
	defer f.Close()
	v, err := fn(f)
	if err != nil {
		return zero, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}
