package main

import (
	"context"
	"net/netip"
	"os"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/bdrmapit"
	"hoiho/internal/core"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/topo"
)

// writeArtifacts generates a small world and writes the file formats the
// bdrmapit CLI consumes.
func writeArtifacts(t *testing.T, itdkPath, tracesPath, bgpPath, relPath, orgsPath string) {
	t.Helper()
	world, err := topo.Build(topo.DefaultConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	corpus := world.TraceAll()
	aliases := itdk.TruthAliases(world).Degrade(1, 0.8)
	ptr := func(a netip.Addr) string {
		if ifc := world.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	}
	graph := itdk.BuildGraph(corpus, aliases, world.Table, ptr)
	ixps := make(map[asn.ASN]bool)
	for _, a := range world.ASes {
		if a.Class == topo.IXP {
			ixps[a.ASN] = true
		}
	}
	an := &bdrmapit.Annotator{Graph: graph, Rel: world.Rel, Orgs: world.Orgs, IXPs: ixps}
	snap := itdk.FromGraph(graph, an.Annotate(), "cli-test", "bdrmapit")

	write := func(path string, fn func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write(itdkPath, func(f *os.File) error { _, err := snap.WriteTo(f); return err })
	write(tracesPath, func(f *os.File) error { _, err := corpus.WriteTo(f); return err })
	write(bgpPath, func(f *os.File) error { _, err := world.Table.WriteTo(f); return err })
	write(relPath, func(f *os.File) error { _, err := world.Rel.WriteTo(f); return err })
	write(orgsPath, func(f *os.File) error { _, err := world.Orgs.WriteTo(f); return err })
}

// writeNCs learns conventions from the snapshot and serializes them.
func writeNCs(t *testing.T, itdkPath, ncsPath string) {
	t.Helper()
	f, err := os.Open(itdkPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := itdk.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	learner := &core.Learner{}
	ncs, err := learner.LearnAll(context.Background(), psl.Default(), snap.TrainingItems())
	if err != nil {
		t.Fatal(err)
	}
	data, err := core.MarshalNCs(ncs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ncsPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
