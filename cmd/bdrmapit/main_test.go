package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// genInputs produces a consistent artifact set via the itdkgen pipeline's
// library path, exercising the full file-based tool chain.
func genInputs(t *testing.T) (itdkPath, tracesPath, bgpPath, relPath, orgsPath string) {
	t.Helper()
	dir := t.TempDir()
	p := func(n string) string { return filepath.Join(dir, n) }
	// Reuse cmd/itdkgen's output format by generating the same content
	// through its package-level behavior: simplest is to shell the
	// library objects directly, but the text formats are stable, so we
	// write them through the itdkgen-equivalent path in-process.
	itdkPath, tracesPath, bgpPath, relPath, orgsPath = p("itdk.txt"), p("tr.txt"), p("bgp.txt"), p("rel.txt"), p("orgs.txt")
	writeArtifacts(t, itdkPath, tracesPath, bgpPath, relPath, orgsPath)
	return
}

func TestRunWithoutNCs(t *testing.T) {
	itdkPath, tracesPath, bgpPath, relPath, orgsPath := genInputs(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-itdk", itdkPath, "-traces", tracesPath, "-bgp", bgpPath,
		"-rel", relPath, "-orgs", orgsPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "node N") {
		t.Errorf("no annotations printed:\n%.300s", out.String())
	}
}

func TestRunWithNCs(t *testing.T) {
	itdkPath, tracesPath, bgpPath, relPath, orgsPath := genInputs(t)
	// Learn conventions with the hoiho library and feed the JSON in.
	ncsPath := filepath.Join(t.TempDir(), "ncs.json")
	writeNCs(t, itdkPath, ncsPath)

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-itdk", itdkPath, "-traces", tracesPath, "-bgp", bgpPath,
		"-rel", relPath, "-orgs", orgsPath, "-ncs", ncsPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "interfaces with extracted ASNs") {
		t.Errorf("decision summary missing:\n%.300s", text)
	}
}

func TestRunMissingArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-itdk", "x"}, &out); err == nil {
		t.Error("missing -traces/-bgp should error")
	}
	if err := run(context.Background(), []string{"-itdk", "nope", "-traces", "nope", "-bgp", "nope"}, &out); err == nil {
		t.Error("missing files should error")
	}
}

func TestRunBadNCs(t *testing.T) {
	itdkPath, tracesPath, bgpPath, _, _ := genInputs(t)
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(context.Background(), []string{"-itdk", itdkPath, "-traces", tracesPath, "-bgp", bgpPath, "-ncs", bad}, &out)
	if err == nil {
		t.Error("bad NC JSON should error")
	}
}
