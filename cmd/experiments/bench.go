package main

// -benchjson: time the learning and extraction hot paths with
// testing.Benchmark and emit a machine-readable JSON report, so each
// perf PR can record its before/after (BENCH_PR2.json and successors)
// instead of quoting ad-hoc numbers.

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/experiments"
	"hoiho/internal/extract"
)

// benchResult is one benchmark's measurement in the JSON report.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func runBench(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// writeBenchJSON measures the learn and extract paths and writes the
// report to path ("-" for stdout).
func writeBenchJSON(path string) error {
	largeItems := experiments.LargeSuffixItems(200)
	fig4 := experiments.Figure4Items()
	ncs, hosts := experiments.CorpusWorkload(128, 100_000)
	corpus := extract.New(ncs)
	corpus.Extract(hosts[0]) // warm the compile-once caches

	results := []benchResult{
		runBench("learn/large-suffix-200", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set, err := core.NewSet("bigcarrier.net", largeItems, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				nc, err := set.Learn(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if nc == nil {
					b.Fatal("no NC")
				}
			}
		}),
		runBench("learn/figure4", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set, err := core.NewSet("equinix.com", fig4, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				nc, err := set.Learn(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if nc == nil || nc.Eval.ATP() != 8 {
					b.Fatal("figure-4 pipeline drifted")
				}
			}
		}),
		runBench("extract/corpus-batch-100k", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hits := 0
				rs, err := corpus.ExtractBatch(context.Background(), hosts)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rs {
					if r.OK {
						hits++
					}
				}
				if hits != len(hosts)/2 {
					b.Fatalf("hits = %d", hits)
				}
			}
		}),
	}

	data, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
