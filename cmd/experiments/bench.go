package main

// -benchjson: time the learning and extraction hot paths with
// testing.Benchmark and emit a machine-readable JSON report, so each
// perf PR can record its before/after (BENCH_PR2.json and successors)
// instead of quoting ad-hoc numbers.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/experiments"
	"hoiho/internal/extract"
)

// benchResult is one benchmark's measurement in the JSON report.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func runBench(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchExtract measures the canonical extraction workload: the same
// corpus and host mix every BENCH_PR*.json records.
func benchExtract() benchResult {
	ncs, hosts := experiments.CorpusWorkload(128, 100_000)
	corpus := extract.New(ncs)
	corpus.Precompile() // warm the compile-once caches
	return runBench("extract/corpus-batch-100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits := 0
			rs, err := corpus.ExtractBatch(context.Background(), hosts)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rs {
				if r.OK {
					hits++
				}
			}
			if hits != len(hosts)/2 {
				b.Fatalf("hits = %d", hits)
			}
		}
	})
}

// benchColdStart measures corpus load-to-ready-to-serve time for both
// serialized forms of the same 128-suffix corpus: the stable JSON
// interchange form (parse + index + compile every matcher) and the HBC
// binary form (decode pre-compiled programs, no JSON, no regexp
// compilation). The hbc/json ratio is the PR-7 acceptance number.
func benchColdStart() (jsonRes, hbcRes benchResult) {
	ncs, _ := experiments.CorpusWorkload(128, 8) // hosts unused: this measures load, not extraction
	corpus := extract.New(ncs)
	var jsonBuf, hbcBuf bytes.Buffer
	if err := corpus.Save(&jsonBuf); err != nil {
		panic(err)
	}
	if err := corpus.SaveBinary(&hbcBuf); err != nil {
		panic(err)
	}
	load := func(data []byte) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := extract.Load(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				if len(c.Suffixes()) != 128 {
					b.Fatalf("loaded %d suffixes", len(c.Suffixes()))
				}
			}
		}
	}
	jsonRes = runBench("extract/cold-start-json", load(jsonBuf.Bytes()))
	hbcRes = runBench("extract/cold-start-hbc", load(hbcBuf.Bytes()))
	return jsonRes, hbcRes
}

// benchDelta measures the PR-10 rollout workload: applying an HBD
// delta that changes a handful of records (4 removed, 4 added out of
// 128) versus a full HBC reload of the same target corpus. Both
// produce the identical ready-to-serve corpus; the delta path reuses
// the base's compiled engines for every unchanged record. Also returns
// the wire sizes, whose ratio is the delta's bandwidth win.
func benchDelta() (applyRes, reloadRes benchResult, deltaLen, fullLen int) {
	ncs, _ := experiments.CorpusWorkload(136, 8)
	base := extract.New(ncs[:128])
	base.Precompile()
	targetNCs := append(append(make([]*core.NC, 0, 128), ncs[:124]...), ncs[128:132]...)
	target := extract.New(targetNCs)
	var delta, full bytes.Buffer
	if err := extract.Diff(base, target, &delta); err != nil {
		panic(err)
	}
	if err := target.SaveBinary(&full); err != nil {
		panic(err)
	}
	applyRes = runBench("rollout/delta-apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, _, err := extract.ApplyDelta(base, delta.Bytes())
			if err != nil {
				b.Fatal(err)
			}
			if len(c.Suffixes()) != 128 {
				b.Fatalf("applied corpus has %d suffixes", len(c.Suffixes()))
			}
		}
	})
	reloadRes = runBench("rollout/full-reload-hbc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := extract.Load(bytes.NewReader(full.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if len(c.Suffixes()) != 128 {
				b.Fatalf("loaded corpus has %d suffixes", len(c.Suffixes()))
			}
		}
	})
	return applyRes, reloadRes, delta.Len(), full.Len()
}

// benchLearnLarge measures the PR-7 learning-alloc workload.
func benchLearnLarge() benchResult {
	largeItems := experiments.LargeSuffixItems(200)
	return runBench("learn/large-suffix-200", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			set, err := core.NewSet("bigcarrier.net", largeItems, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			nc, err := set.Learn(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if nc == nil {
				b.Fatal("no NC")
			}
		}
	})
}

// writeBenchJSON measures the learn and extract paths and writes the
// report to path ("-" for stdout).
func writeBenchJSON(path string) error {
	fig4 := experiments.Figure4Items()

	coldJSON, coldHBC := benchColdStart()
	deltaApply, fullReload, deltaLen, fullLen := benchDelta()
	fmt.Fprintf(os.Stderr, "benchjson: delta %d bytes vs full corpus %d bytes (%.1f%%)\n",
		deltaLen, fullLen, 100*float64(deltaLen)/float64(fullLen))
	results := []benchResult{
		benchLearnLarge(),
		runBench("learn/figure4", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set, err := core.NewSet("equinix.com", fig4, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				nc, err := set.Learn(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if nc == nil || nc.Eval.ATP() != 8 {
					b.Fatal("figure-4 pipeline drifted")
				}
			}
		}),
		benchExtract(),
		coldJSON,
		coldHBC,
		deltaApply,
		fullReload,
	}

	data, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// benchFile is the subset of a BENCH_PR*.json file the gate reads. The
// recorded numbers live either at the top level (-benchjson output) or
// under "after" (the annotated before/after files).
type benchFile struct {
	Benchmarks []benchResult `json:"benchmarks"`
	After      *struct {
		Benchmarks []benchResult `json:"benchmarks"`
	} `json:"after"`
}

// coldStartMinRatio is the PR-7 acceptance bar: loading the HBC binary
// corpus must be at least this many times faster than loading the same
// corpus from JSON. Measured live as a ratio, so it holds on any
// machine class.
const coldStartMinRatio = 5.0

// deltaApplyMinSpeedup is the PR-10 acceptance bar: applying a
// small-change HBD delta must be at least this many times faster than a
// full HBC reload of the same target. Measured live as a ratio, so it
// holds on any machine class. Typical measured speedup is ~1.5x (the
// delta path skips decode and engine construction for copied records
// but still re-encodes and checksums the full target); the bar sits
// below that with margin because both sides share noisy costs (corpus
// indexing, PSL walks) that compress the ratio under scheduler jitter.
// Gated only when the baseline file records the rollout benchmarks
// (BENCH_PR10.json and later).
const deltaApplyMinSpeedup = 1.2

// deltaMaxSizePct is the PR-10 acceptance bar on the wire: the delta
// for the canonical handful-changed workload (8 of 128 records) must
// stay under this percentage of the full corpus size.
const deltaMaxSizePct = 20.0

// learnAllocCeiling is the PR-7 acceptance bar on the learning path:
// allocations per learn/large-suffix-200 op after the struct-of-arrays
// arena work. Alloc counts are machine-independent, so this is gated as
// an absolute.
const learnAllocCeiling = 22_000

// runBenchGate re-measures the hot paths and fails when any has
// regressed against the baseline recorded in path — the committed
// BENCH_PR7.json in CI — so a perf regression breaks the build instead
// of surfacing in the next perf PR. Alloc counts and the HBC/JSON
// cold-start ratio are machine-independent and gated tightly; ns/op is
// gated at the given tolerance, which assumes baseline and gate run on
// the same machine class.
func runBenchGate(path string, tolerancePct float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	recorded := bf.Benchmarks
	if bf.After != nil {
		recorded = bf.After.Benchmarks
	}
	baseline := func(name string) *benchResult {
		for i := range recorded {
			if recorded[i].Name == name {
				return &recorded[i]
			}
		}
		return nil
	}
	base := baseline("extract/corpus-batch-100k")
	if base == nil {
		return fmt.Errorf("%s: no extract/corpus-batch-100k baseline", path)
	}
	fresh := benchExtract()
	limit := base.NsPerOp * (1 + tolerancePct/100)
	fmt.Printf("bench gate: %s: %.0f ns/op, %d allocs/op (baseline %.0f ns/op, %d allocs/op; limit %.0f)\n",
		fresh.Name, fresh.NsPerOp, fresh.AllocsPerOp, base.NsPerOp, base.AllocsPerOp, limit)
	// Chunk bookkeeping makes the last alloc or two nondeterministic;
	// anything beyond a doubling plus slack is a real leak back onto the
	// per-hostname path.
	if fresh.AllocsPerOp > base.AllocsPerOp*2+8 {
		return fmt.Errorf("bench gate: allocs regressed: %d > %d allowed",
			fresh.AllocsPerOp, base.AllocsPerOp*2+8)
	}
	if fresh.NsPerOp > limit {
		return fmt.Errorf("bench gate: ns/op regressed >%.0f%%: %.0f > %.0f",
			tolerancePct, fresh.NsPerOp, limit)
	}

	// Cold-start: the HBC path must stay >= coldStartMinRatio x faster
	// than the JSON path. Both sides are measured in this run, so the
	// gate is a pure ratio and does not depend on the baseline machine.
	coldJSON, coldHBC := benchColdStart()
	ratio := coldJSON.NsPerOp / coldHBC.NsPerOp
	fmt.Printf("bench gate: cold start: json %.0f ns/op, hbc %.0f ns/op (%.1fx, need >= %.0fx)\n",
		coldJSON.NsPerOp, coldHBC.NsPerOp, ratio, coldStartMinRatio)
	if ratio < coldStartMinRatio {
		return fmt.Errorf("bench gate: HBC cold start only %.1fx faster than JSON (need >= %.0fx)",
			ratio, coldStartMinRatio)
	}

	// Delta rollouts (PR 10): gated only against baselines that record
	// the rollout benchmarks, so older BENCH_PR*.json gates skip it.
	if baseline("rollout/delta-apply") != nil {
		applyRes, reloadRes, deltaLen, fullLen := benchDelta()
		speedup := reloadRes.NsPerOp / applyRes.NsPerOp
		sizePct := 100 * float64(deltaLen) / float64(fullLen)
		fmt.Printf("bench gate: delta apply %.0f ns/op vs full reload %.0f ns/op (%.1fx, need >= %.1fx); delta %d bytes = %.1f%% of full %d (cap %.0f%%)\n",
			applyRes.NsPerOp, reloadRes.NsPerOp, speedup, deltaApplyMinSpeedup,
			deltaLen, sizePct, fullLen, deltaMaxSizePct)
		if speedup < deltaApplyMinSpeedup {
			return fmt.Errorf("bench gate: delta apply only %.2fx faster than full reload (need >= %.1fx)",
				speedup, deltaApplyMinSpeedup)
		}
		if sizePct > deltaMaxSizePct {
			return fmt.Errorf("bench gate: delta is %.1f%% of the full corpus size (cap %.0f%%)",
				sizePct, deltaMaxSizePct)
		}
	}

	// Learning allocations: gated both as the PR-7 absolute ceiling and
	// against the recorded baseline (with slack for allocator noise).
	learn := benchLearnLarge()
	fmt.Printf("bench gate: %s: %d allocs/op (ceiling %d)\n", learn.Name, learn.AllocsPerOp, learnAllocCeiling)
	if learn.AllocsPerOp > learnAllocCeiling {
		return fmt.Errorf("bench gate: learn allocs %d exceed ceiling %d", learn.AllocsPerOp, learnAllocCeiling)
	}
	if lb := baseline("learn/large-suffix-200"); lb != nil && learn.AllocsPerOp > lb.AllocsPerOp*11/10+64 {
		return fmt.Errorf("bench gate: learn allocs regressed: %d > %d allowed (baseline %d)",
			learn.AllocsPerOp, lb.AllocsPerOp*11/10+64, lb.AllocsPerOp)
	}
	return nil
}
