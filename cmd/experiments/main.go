// Command experiments regenerates every table and figure of the paper's
// evaluation on the synthetic substrate and emits a markdown report
// (EXPERIMENTS.md is produced by running it at -scale 1).
//
// Usage:
//
//	experiments [-scale 1.0] [-run all|figure5|figure6|table1|table2|section4|section5|figure7] [-o report.md]
//	experiments -benchjson BENCH.json
//	experiments -benchgate BENCH_PR6.json [-benchgate-tol 20]
//
// -cpuprofile/-memprofile write pprof profiles of whichever mode ran, so
// perf PRs are measured rather than guessed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"

	"hoiho/internal/core"
	"hoiho/internal/experiments"
	"hoiho/internal/psl"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "topology scale (1.0 = full reproduction)")
	which := fs.String("run", "all", "experiment to run: all, figure5, figure6, table1, table2, section4, section5, figure7")
	outPath := fs.String("o", "-", "output file ('-' for stdout)")
	benchJSON := fs.String("benchjson", "", "instead of a report, benchmark the learn/extract hot paths and write JSON to this file ('-' for stdout)")
	benchGate := fs.String("benchgate", "", "instead of a report, re-measure the extraction hot path and fail if it regressed against this recorded baseline JSON (the CI perf gate)")
	benchGateTol := fs.Float64("benchgate-tol", 20, "ns/op regression tolerance for -benchgate, in percent")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if *benchJSON != "" {
		return writeBenchJSON(*benchJSON)
	}
	if *benchGate != "" {
		return runBenchGate(*benchGate, *benchGateTol)
	}
	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return Report(ctx, out, experiments.Scale(*scale), *which)
}

// Report runs the requested experiments and writes the markdown report.
// Cancelling ctx (SIGINT/SIGTERM) aborts the in-flight experiment; the
// report written so far remains on disk.
func Report(ctx context.Context, out io.Writer, scale experiments.Scale, which string) error {
	list := psl.Default()
	fmt.Fprintf(out, "# Experiments (scale %.2f)\n\n", float64(scale))
	fmt.Fprintf(out, "All data is synthesized (see DESIGN.md); compare *shapes* with the paper, not absolute counts.\n\n")

	f5, f6, runs, err := experiments.Figure5(ctx, scale, list)
	if err != nil {
		return err
	}
	itdkFinal := runs[len(runs)-3] // last ITDK run (before the two PDB runs)
	pdbFinal := runs[len(runs)-1]

	want := func(name string) bool { return which == "all" || which == name }

	if want("figure5") {
		fmt.Fprintf(out, "## Figure 5 — classification of NCs per training set\n\n")
		fmt.Fprintf(out, "Paper: 12-55 good NCs per ITDK, growing over time; 55 good NCs for the February 2020 PeeringDB snapshot.\n\n")
		rows := make([][]string, 0, len(f5))
		for _, r := range f5 {
			rows = append(rows, []string{r.Name, r.Method,
				fmt.Sprint(r.Good), fmt.Sprint(r.Promising), fmt.Sprint(r.Poor)})
		}
		fmt.Fprintln(out, experiments.FormatTable(
			[]string{"training set", "method", "good", "promising", "poor"}, rows))
	}

	if want("figure6") {
		fmt.Fprintf(out, "## Figure 6 — agreement between training and extracted ASNs (usable NCs)\n\n")
		fmt.Fprintf(out, "Paper: RTAA 74.8%%-80.7%%, bdrmapIT 83.7%%-87.4%%, PeeringDB 96.0%%; siblings add ~1%% (RTAA) / ~2%% (bdrmapIT).\n\n")
		rows := make([][]string, 0, len(f6))
		for _, r := range f6 {
			rows = append(rows, []string{r.Name, r.Method,
				fmt.Sprintf("%.1f%%", 100*r.PPV),
				fmt.Sprintf("%.1f%%", 100*r.PPVSibling),
				fmt.Sprint(r.Matches)})
		}
		fmt.Fprintln(out, experiments.FormatTable(
			[]string{"training set", "method", "PPV", "PPV+siblings", "matches"}, rows))
	}

	if want("table1") {
		pdbT1, err := experiments.RunPDBEra(ctx, "pdb-table1", itdkFinal.World, 502, list)
		if err != nil {
			return err
		}
		t1 := experiments.Table1(itdkFinal, pdbT1)
		fmt.Fprintf(out, "## Table 1 — taxonomy of how operators embed ASNs\n\n")
		fmt.Fprintf(out, "Paper (usable/single): simple 17.7/4.6, start 50.8/23.1, end 10.8/43.1, bare 5.4/7.7, complex 15.4/21.5 (%%).\n\n")
		rows := make([][]string, 0, len(t1))
		for _, r := range t1 {
			rows = append(rows, []string{r.Style.String(),
				fmt.Sprintf("%.1f%% (%d)", r.UsablePct, r.UsableCount),
				fmt.Sprintf("%.1f%% (%d)", r.SinglePct, r.SingleCount)})
		}
		fmt.Fprintln(out, experiments.FormatTable([]string{"style", "usable", "single"}, rows))
	}

	var s5 *experiments.Section5Result
	if want("section5") || want("table2") {
		s5 = experiments.RunSection5(ctx, itdkFinal)
	}

	if want("section5") {
		fmt.Fprintf(out, "## §5 — using conventions in bdrmapIT\n\n")
		fmt.Fprintf(out, "Paper: agreement 87.4%% -> 97.1%%; error rate 1/7.9 -> 1/34.5; used 72.8%% of 723 incongruent extractions (82.5%% good, 44.0%% promising, 18.2%% poor).\n\n")
		fmt.Fprintf(out, "- agreement between extracted and inferred ASNs: %.1f%% -> %.1f%%\n",
			100*s5.AgreementBefore, 100*s5.AgreementAfter)
		fmt.Fprintf(out, "- error rate: %s -> %s\n",
			experiments.OneIn(s5.ErrOneInBefore), experiments.OneIn(s5.ErrOneInAfter))
		fmt.Fprintf(out, "- incongruent extractions (decisions): %d; used %d (%s)\n",
			s5.Decisions, s5.UsedTotal, experiments.Pct(s5.UsedTotal, s5.Decisions))
		classes := []core.Classification{core.Good, core.Promising, core.Poor}
		for _, c := range classes {
			uc := s5.PerClass[c]
			fmt.Fprintf(out, "- used %s of %d extractions from %s NCs\n",
				experiments.Pct(uc[0], uc[1]), uc[1], c)
		}
		fmt.Fprintln(out)
	}

	if want("table2") {
		rows, correct, total := experiments.Table2(itdkFinal, s5.Result)
		fmt.Fprintf(out, "## Table 2 — validation of the modified bdrmapIT\n\n")
		fmt.Fprintf(out, "Paper: correct decision for 92.5%% of 467 validated hostnames (345 TP, 27 FN, 8 FP, 87 TN).\n\n")
		cells := make([][]string, 0, len(rows))
		for _, r := range rows {
			cells = append(cells, []string{r.Label,
				fmt.Sprint(r.CorrectUsed), fmt.Sprint(r.CorrectUnused),
				fmt.Sprint(r.IncorrectUsed), fmt.Sprint(r.IncorrectUnused)})
		}
		fmt.Fprintln(out, experiments.FormatTable(
			[]string{"validation source", "correct used (TP)", "correct unused (FN)",
				"incorrect used (FP)", "incorrect unused (TN)"}, cells))
		fmt.Fprintf(out, "Correct decisions: %d of %d (%s).\n\n",
			correct, total, experiments.Pct(correct, total))
	}

	if want("section4") {
		own, other := experiments.SuffixOriginAnalysis(itdkFinal)
		fmt.Fprintf(out, "## §4 — single-NC suffix origin\n\n")
		fmt.Fprintf(out, "Paper: 79.5%% of single-NC suffixes belong to the organization with the extracted ASN.\n\n")
		fmt.Fprintf(out, "- suffix belongs to the extracted ASN's organization: %d of %d (%s)\n\n",
			own, own+other, experiments.Pct(own, own+other))
	}

	if want("figure7") {
		f7, err := experiments.Figure7(ctx, itdkFinal)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "## §7 — full-PTR expansion (OpenINTEL analogue)\n\n")
		fmt.Fprintf(out, "Paper: matches grew from 5.4K (ITDK) to 22.5K (all delegated space), a factor of ~4.2.\n\n")
		fmt.Fprintf(out, "- traceroute-observed hostnames matching usable NCs: %d\n", f7.ObservedMatches)
		fmt.Fprintf(out, "- full PTR zone matches: %d (factor %.2f)\n\n", f7.FullMatches, f7.Factor)
	}

	if which == "all" {
		fmt.Fprintf(out, "## Training-set overlap (§4)\n\n")
		itdkSuf := suffixSet(itdkFinal.NCs, true)
		pdbSuf := suffixSet(pdbFinal.NCs, true)
		common := intersect(itdkSuf, pdbSuf)
		fmt.Fprintf(out, "Paper: 130 usable NCs total; 34 suffixes common to ITDK and PeeringDB, 56 ISPs unique to ITDK, 40 IXPs unique to PeeringDB.\n\n")
		fmt.Fprintf(out, "- usable NC suffixes: ITDK %d, PeeringDB %d, common %d\n\n",
			len(itdkSuf), len(pdbSuf), len(common))
	}
	return nil
}

func suffixSet(ncs []*core.NC, usableOnly bool) map[string]bool {
	out := make(map[string]bool)
	for _, nc := range ncs {
		if !usableOnly || nc.Class.Usable() {
			out[nc.Suffix] = true
		}
	}
	return out
}

func intersect(a, b map[string]bool) []string {
	var out []string
	for s := range a {
		if b[s] {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
