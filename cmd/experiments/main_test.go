package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hoiho/internal/experiments"
)

func TestReportAll(t *testing.T) {
	var out bytes.Buffer
	if err := Report(context.Background(), &out, experiments.Scale(0.2), "all"); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"## Figure 5", "## Figure 6", "## Table 1", "## Table 2",
		"## §5", "## §4", "## §7", "Training-set overlap",
		"itdk-2010-07", "itdk-2020-01", "pdb-2020-02",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := Report(context.Background(), &out, experiments.Scale(0.2), "table2"); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "## Table 2") {
		t.Error("table 2 missing")
	}
	if strings.Contains(text, "## Table 1") {
		t.Error("unexpected table 1 section")
	}
}
