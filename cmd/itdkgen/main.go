// Command itdkgen generates synthetic training data: it builds a
// router-level Internet, probes it with Ark-style traceroutes, assembles
// an ITDK-like snapshot annotated by RouterToAsAssignment or bdrmapIT,
// and optionally emits the companion artifacts (traceroute corpus, AS
// relationships, AS-to-organization map, BGP table, PeeringDB snapshot,
// full PTR zone, ground truth).
//
// Example:
//
//	itdkgen -seed 7 -method bdrmapit -o itdk.txt -pdb pdb.json -ptr zone.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"

	"hoiho/internal/asn"
	"hoiho/internal/bdrmapit"
	"hoiho/internal/itdk"
	"hoiho/internal/peeringdb"
	"hoiho/internal/rtaa"
	"hoiho/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "itdkgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("itdkgen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generator seed")
	method := fs.String("method", "bdrmapit", "annotation method: rtaa or bdrmapit")
	completeness := fs.Float64("alias-completeness", 0.8, "alias resolution completeness in [0,1]")
	name := fs.String("name", "itdk-synth", "snapshot name")
	out := fs.String("o", "-", "ITDK snapshot output file ('-' for stdout)")
	tracesOut := fs.String("traces", "", "also write the traceroute corpus here")
	relOut := fs.String("rel", "", "also write AS relationships (as-rel format) here")
	orgsOut := fs.String("orgs", "", "also write the AS-to-organization map here")
	bgpOut := fs.String("bgp", "", "also write the BGP table here")
	pdbOut := fs.String("pdb", "", "also write a PeeringDB snapshot here")
	ptrOut := fs.String("ptr", "", "also write the full PTR zone (addr hostname) here")
	truthOut := fs.String("truth", "", "also write ground-truth ownership (addr asn) here")
	if err := fs.Parse(args); err != nil {
		return err
	}

	world, err := topo.Build(topo.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	corpus := world.TraceAll()
	aliases := itdk.TruthAliases(world).Degrade(*seed^0xa11a5, *completeness)
	ptr := func(a netip.Addr) string {
		if ifc := world.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	}
	graph := itdk.BuildGraph(corpus, aliases, world.Table, ptr)

	var annotations map[int]asn.ASN
	switch *method {
	case "rtaa":
		annotations = rtaa.Annotate(graph, world.Rel)
	case "bdrmapit":
		ixps := make(map[asn.ASN]bool)
		for _, a := range world.ASes {
			if a.Class == topo.IXP {
				ixps[a.ASN] = true
			}
		}
		an := &bdrmapit.Annotator{Graph: graph, Rel: world.Rel, Orgs: world.Orgs, IXPs: ixps}
		annotations = an.Annotate()
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	snap := itdk.FromGraph(graph, annotations, *name, *method)

	if err := writeTo(*out, func(w io.Writer) error {
		_, err := snap.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	if *tracesOut != "" {
		if err := writeTo(*tracesOut, func(w io.Writer) error {
			_, err := corpus.WriteTo(w)
			return err
		}); err != nil {
			return err
		}
	}
	if *relOut != "" {
		if err := writeTo(*relOut, func(w io.Writer) error {
			_, err := world.Rel.WriteTo(w)
			return err
		}); err != nil {
			return err
		}
	}
	if *orgsOut != "" {
		if err := writeTo(*orgsOut, func(w io.Writer) error {
			_, err := world.Orgs.WriteTo(w)
			return err
		}); err != nil {
			return err
		}
	}
	if *bgpOut != "" {
		if err := writeTo(*bgpOut, func(w io.Writer) error {
			_, err := world.Table.WriteTo(w)
			return err
		}); err != nil {
			return err
		}
	}
	if *pdbOut != "" {
		pdb := peeringdb.Synthesize(world, *name+"-pdb", peeringdb.SynthOptions{
			Seed: *seed + 1, ErrorRate: 0.035, OrgMainRate: 0.06,
		})
		if err := writeTo(*pdbOut, func(w io.Writer) error {
			_, err := pdb.WriteTo(w)
			return err
		}); err != nil {
			return err
		}
	}
	if *ptrOut != "" {
		if err := writeTo(*ptrOut, func(w io.Writer) error {
			bw := bufio.NewWriter(w)
			for _, ifc := range world.Interfaces() {
				if ifc.Hostname != "" {
					fmt.Fprintf(bw, "%s %s\n", ifc.Addr, ifc.Hostname)
				}
			}
			return bw.Flush()
		}); err != nil {
			return err
		}
	}
	if *truthOut != "" {
		if err := writeTo(*truthOut, func(w io.Writer) error {
			bw := bufio.NewWriter(w)
			for _, ifc := range world.Interfaces() {
				fmt.Fprintf(bw, "%s %d\n", ifc.Addr, ifc.Router.Owner)
			}
			return bw.Flush()
		}); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "itdkgen: %d ASes, %d routers, %d interfaces, %d traces, %d nodes observed\n",
		len(world.ASes), len(world.Routers), len(world.ByAddr), corpus.Len(), len(graph.Nodes))
	return nil
}

func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
