package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoiho/internal/itdk"
	"hoiho/internal/peeringdb"
	"hoiho/internal/traceroute"
)

func TestRunWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	args := []string{
		"-seed", "5",
		"-o", p("itdk.txt"),
		"-traces", p("tr.txt"),
		"-rel", p("rel.txt"),
		"-orgs", p("orgs.txt"),
		"-bgp", p("bgp.txt"),
		"-pdb", p("pdb.json"),
		"-ptr", p("ptr.txt"),
		"-truth", p("truth.txt"),
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}

	// Snapshot parses and carries annotations and hostnames.
	f, err := os.Open(p("itdk.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := itdk.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Method != "bdrmapit" || len(snap.Nodes) == 0 {
		t.Errorf("snapshot: method=%q nodes=%d", snap.Method, len(snap.Nodes))
	}
	if len(snap.TrainingItems()) == 0 {
		t.Error("no training items in snapshot")
	}

	// Traces parse.
	tf, err := os.Open(p("tr.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	corpus, err := traceroute.Parse(tf)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() == 0 {
		t.Error("empty corpus")
	}

	// PeeringDB parses.
	pf, err := os.Open(p("pdb.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	pdb, err := peeringdb.Parse(pf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pdb.Records) == 0 {
		t.Error("empty peeringdb snapshot")
	}

	// PTR zone and truth are non-empty "addr value" lines.
	for _, name := range []string{"ptr.txt", "truth.txt", "rel.txt", "orgs.txt", "bgp.txt"} {
		data, err := os.ReadFile(p(name))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.TrimSpace(string(data))) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestRunRTAAMethod(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "itdk.txt")
	if err := run([]string{"-seed", "6", "-method", "rtaa", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "method=rtaa") {
		t.Error("method header missing")
	}
}

func TestRunUnknownMethod(t *testing.T) {
	if err := run([]string{"-method", "bogus", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.txt"), filepath.Join(dir, "b.txt")
	if err := run([]string{"-seed", "9", "-o", a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "9", "-o", b}); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Error("same seed produced different snapshots")
	}
}
