// Command hoiho learns ASN naming conventions from router hostnames
// annotated with training ASNs, reimplementing the sc_hoiho tool the
// paper ships in scamper.
//
// Input formats (chosen by -format):
//
//	plain: one observation per line, "hostname asn [address]"
//	itdk:  an ITDK snapshot produced by cmd/itdkgen or itdk.WriteTo
//
// Output: learned conventions per suffix, as text or JSON (-json),
// including per-regex evaluation and the good/promising/poor class.
//
// A learned corpus can be saved and re-applied at scale (§7's workflow):
// -save writes the corpus after learning — the stable JSON form by
// default, or the HBC binary form (-save-format bin, or any path ending
// in .hbc), which loads to ready-to-serve state without JSON parsing or
// matcher recompilation. -apply loads either form (sniffed by content)
// and streams hostnames through the extraction engine, emitting one
// "hostname<TAB>asn" line per match. -classes restricts application to
// the good or usable (good+promising) conventions. The same saved file
// is what the extraction daemon serves: `hoihod -corpus ncs.json` (or
// `-corpus ncs.hbc` for fast cold start) exposes it over HTTP with hot
// reload (SIGHUP picks up a re-learned file atomically), load shedding,
// and graceful drain.
//
// For fleet upgrades, -diff computes the HBD rollout delta between two
// saved corpora (`hoiho -diff old.hbc new.hbc -o patch.hbd`): a small
// patch chained to the old corpus's fingerprint that the hoihoc
// coordinator resolves and ships instead of the full corpus.
//
// Example:
//
//	hoiho -format itdk itdk-2020-01.txt
//	hoiho -json training.txt > ncs.json
//	hoiho -save ncs.json training.txt
//	hoiho -save ncs.hbc training.txt          # binary corpus, ~7x faster cold start
//	hoiho -apply ncs.hbc -classes usable ptr-records.txt
//	zcat ptr.gz | hoiho -apply ncs.json -
//
// Long runs are interruptible: SIGINT/SIGTERM (or -timeout) cancels the
// pipeline cleanly, and -checkpoint/-resume let an interrupted learning
// run pick up where it stopped:
//
//	hoiho -checkpoint ck.json -save ncs.json training.txt   # interrupted…
//	hoiho -checkpoint ck.json -resume -save ncs.json training.txt
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"hoiho/internal/asn"
	"hoiho/internal/asnames"
	"hoiho/internal/atomicfile"
	"hoiho/internal/core"
	"hoiho/internal/extract"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hoiho:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hoiho", flag.ContinueOnError)
	format := fs.String("format", "plain", "input format: plain or itdk")
	jsonOut := fs.Bool("json", false, "emit learned conventions as JSON")
	minItems := fs.Int("min-items", 4, "minimum training items per suffix")
	pslPath := fs.String("psl", "", "public suffix list file (default: embedded snapshot)")
	noMerge := fs.Bool("no-merge", false, "ablation: disable phase 2 (merge regexes)")
	noClasses := fs.Bool("no-classes", false, "ablation: disable phase 3 (character classes)")
	noSets := fs.Bool("no-sets", false, "ablation: disable phase 4 (regex sets)")
	noTypo := fs.Bool("no-typo-credit", false, "ablation: disable the edit-distance-1 TP credit")
	names := fs.Bool("names", false, "learn AS *name* conventions (§7 extension); plain input becomes \"hostname name\"")
	matches := fs.Bool("matches", false, "show per-hostname classifications under each convention (the paper's data-supplement view)")
	diffMode := fs.Bool("diff", false, "compute an HBD rollout delta between two saved corpora: hoiho -diff <old> <new> -o patch.hbd")
	diffOut := fs.String("o", "", "with -diff: write the delta to this file (required)")
	savePath := fs.String("save", "", "after learning, save the conventions to this file (format per -save-format)")
	saveFormat := fs.String("save-format", "auto", "with -save: auto (a .hbc path writes the HBC binary corpus, anything else JSON), json, or bin")
	applyPath := fs.String("apply", "", "apply a saved conventions JSON to hostnames from <file> (or - for stdin); emits hostname<TAB>asn")
	classes := fs.String("classes", "usable", "with -apply: which conventions to use: good, usable, or all")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	timeout := fs.Duration("timeout", 0, "overall wall-clock budget (0: none); on expiry the run stops cleanly")
	suffixTimeout := fs.Duration("suffix-timeout", 0, "per-suffix learning budget (0: none); a suffix over budget is quarantined, not fatal")
	checkpoint := fs.String("checkpoint", "", "periodically record completed suffixes to this file while learning")
	resume := fs.Bool("resume", false, "with -checkpoint: skip suffixes the checkpoint already records")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *diffMode {
		// Stdlib flag parsing stops at the first positional, but the
		// natural spelling puts -o after the corpus paths (`hoiho -diff
		// old new -o patch.hbd`); re-parse interleaved flags here.
		rest := fs.Args()
		var inputs []string
		for len(rest) > 0 {
			if strings.HasPrefix(rest[0], "-") && len(rest[0]) > 1 {
				if err := fs.Parse(rest); err != nil {
					return err
				}
				rest = fs.Args()
				continue
			}
			inputs = append(inputs, rest[0])
			rest = rest[1:]
		}
		if len(inputs) != 2 {
			return fmt.Errorf("usage: hoiho -diff <old-corpus> <new-corpus> -o patch.hbd")
		}
		if *diffOut == "" {
			return fmt.Errorf("-diff requires -o <patch.hbd> (the delta output path)")
		}
		return runDiff(inputs[0], inputs[1], *diffOut)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: hoiho [flags] <training-file>")
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hoiho:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hoiho:", err)
			}
		}()
	}
	if *applyPath != "" {
		return runApply(ctx, *applyPath, fs.Arg(0), out, *classes)
	}

	list := psl.Default()
	if *pslPath != "" {
		f, err := os.Open(*pslPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if list, err = psl.Parse(f); err != nil {
			return err
		}
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	if *names {
		if *format != "plain" {
			return fmt.Errorf("-names requires -format plain")
		}
		return runNames(f, out, list, *minItems)
	}

	var items []core.Item
	switch *format {
	case "plain":
		items, err = parsePlain(f)
	case "itdk":
		var snap *itdk.Snapshot
		if snap, err = itdk.Parse(f); err == nil {
			items = snap.TrainingItems()
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	learner := &core.Learner{
		MinItems:   *minItems,
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Opts: core.Options{
			DisableMerge:      *noMerge,
			DisableClasses:    *noClasses,
			DisableSets:       *noSets,
			DisableTypoCredit: *noTypo,
			SuffixTimeout:     *suffixTimeout,
		},
	}
	report, err := learner.Learn(ctx, list, items)
	if err != nil {
		if report == nil {
			return err // setup failure (bad checkpoint, nil PSL), not an interrupt
		}
		// Interrupted (signal or -timeout). The checkpoint, if configured,
		// has already been flushed with every suffix completed so far.
		msg := fmt.Sprintf("interrupted (%v): %d suffixes learned", err, report.Learned+report.Resumed)
		if *checkpoint != "" {
			msg += fmt.Sprintf("; progress saved to %s — rerun with -resume to continue", *checkpoint)
		}
		return fmt.Errorf("%s", msg)
	}
	for _, q := range report.Quarantined {
		fmt.Fprintf(os.Stderr, "hoiho: warning: suffix %s quarantined: %v\n", q.Suffix, q.Err)
	}
	ncs := report.NCs

	if *savePath != "" {
		c := extract.New(ncs, extract.WithPSL(list))
		switch *saveFormat {
		case "auto":
			err = c.SaveFile(*savePath)
		case "json":
			err = c.SaveFileJSON(*savePath)
		case "bin":
			err = c.SaveFileBinary(*savePath)
		default:
			return fmt.Errorf("unknown -save-format %q (want auto, json, or bin)", *saveFormat)
		}
		if err != nil {
			return err
		}
		// The saved file is exactly what the serving side loads — both
		// one-shot (-apply) and the long-running daemon sniff the format
		// by content, so JSON and HBC files are interchangeable here.
		fmt.Fprintf(os.Stderr, "hoiho: saved %d conventions to %s; apply with `hoiho -apply %s <hosts>` or serve with `hoihod -corpus %s`\n",
			len(ncs), *savePath, *savePath, *savePath)
	}

	if *jsonOut {
		data, err := core.MarshalNCs(ncs)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(out, string(data))
		return err
	}
	fmt.Fprintf(out, "# %d training items, %d conventions\n", len(items), len(ncs))
	groups, _ := core.GroupItems(list, items)
	for _, nc := range ncs {
		tag := nc.Class.String()
		if nc.Single {
			tag += ",single"
		}
		fmt.Fprintf(out, "%s: %s  TP=%d FP=%d FN=%d ATP=%d PPV=%.3f unique=%d\n",
			nc.Suffix, tag, nc.Eval.TP, nc.Eval.FP, nc.Eval.FN,
			nc.Eval.ATP(), nc.Eval.PPV(), nc.Eval.UniqueTP)
		for _, r := range nc.Strings() {
			fmt.Fprintf(out, "  %s\n", r)
		}
		if !*matches {
			continue
		}
		// Per-hostname classification, the view the paper's public data
		// supplement provides for every suffix.
		set, err := core.NewSet(nc.Suffix, groups[nc.Suffix], learner.Opts)
		if err != nil {
			return err
		}
		_, exts := set.EvaluateDetailed(nc.Regexes...)
		for _, e := range exts {
			extracted := e.ASN
			if extracted == "" {
				extracted = "-"
			}
			fmt.Fprintf(out, "  %-3s %-50s train=%s extracted=%s\n",
				e.Outcome, e.Item.Hostname, e.Item.ASN, extracted)
		}
	}
	return nil
}

// runDiff computes the HBD rollout delta that takes the old saved
// corpus to the new one. The delta is chained to the old corpus's
// fingerprint, so a node (or the hoihoc coordinator) applies it only
// against exactly that base, and applying reproduces the new corpus
// byte for byte. Both inputs may be JSON or HBC; classes are never
// filtered here — the delta describes the full corpus.
func runDiff(oldPath, newPath, outPath string) error {
	oldC, err := extract.LoadFile(oldPath)
	if err != nil {
		return fmt.Errorf("old corpus: %w", err)
	}
	newC, err := extract.LoadFile(newPath)
	if err != nil {
		return fmt.Errorf("new corpus: %w", err)
	}
	var delta bytes.Buffer
	if err := extract.Diff(oldC, newC, &delta); err != nil {
		return err
	}
	var full bytes.Buffer
	if err := newC.SaveBinary(&full); err != nil {
		return err
	}
	if err := atomicfile.WriteFile(outPath, func(w io.Writer) error {
		_, err := w.Write(delta.Bytes())
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"hoiho: wrote %d-byte delta %s → %s to %s (full corpus %d bytes, %.1f%%); roll out with `curl -X POST --data-binary @%s <router>/-/rollout`\n",
		delta.Len(), oldC.FingerprintString(), newC.FingerprintString(), outPath,
		full.Len(), 100*float64(delta.Len())/float64(full.Len()), outPath)
	return nil
}

// runApply loads a saved corpus and streams hostnames through it,
// emitting one "hostname<TAB>asn" line per extraction. hostsPath may be
// "-" for stdin. Lines may carry extra whitespace-separated columns (as
// in PTR dumps); only the first field is used. Cancelling ctx shuts the
// pipeline down cleanly: results already emitted are flushed, and the
// run reports the interruption.
func runApply(ctx context.Context, corpusPath, hostsPath string, out io.Writer, classes string) error {
	var opts []extract.Option
	switch classes {
	case "all":
	case "usable":
		opts = append(opts, extract.UsableOnly())
	case "good":
		opts = append(opts, extract.MinClass(core.Good))
	default:
		return fmt.Errorf("unknown -classes %q (want good, usable, or all)", classes)
	}
	corpus, err := extract.LoadFile(corpusPath, opts...)
	if err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if hostsPath != "-" {
		f, err := os.Open(hostsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	// Feed the scanner into the corpus's ordered streaming pipeline; the
	// output arrives in input order, so results line up with the file.
	// Every send selects on ctx.Done so a signal or timeout unwinds the
	// whole pipeline instead of deadlocking the feeder.
	in := make(chan string, 256)
	scanErr := make(chan error, 1)
	go func() {
		defer close(in)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if i := strings.IndexAny(line, " \t"); i >= 0 {
				line = line[:i]
			}
			select {
			case in <- line:
			case <-ctx.Done():
				scanErr <- ctx.Err()
				return
			}
		}
		scanErr <- sc.Err()
	}()

	w := bufio.NewWriter(out)
	for res := range corpus.ExtractStream(ctx, in) {
		if !res.OK {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\n", res.Hostname, res.ASN)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := <-scanErr; err != nil {
		return err
	}
	return ctx.Err()
}

// runNames learns AS-name conventions from "hostname name" lines.
func runNames(r io.Reader, out io.Writer, list *psl.List, minItems int) error {
	var items []asnames.Item
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("line %d: want hostname name", lineno)
		}
		items = append(items, asnames.Item{Hostname: fields[0], Name: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	l := &asnames.Learner{MinItems: minItems}
	ncs, err := l.LearnAll(list, items)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# %d training items, %d name conventions\n", len(items), len(ncs))
	for _, nc := range ncs {
		tag := "usable"
		if nc.Good {
			tag = "good"
		}
		fmt.Fprintf(out, "%s: %s  TP=%d FP=%d FN=%d ATP=%d PPV=%.3f unique=%d\n",
			nc.Suffix, tag, nc.Eval.TP, nc.Eval.FP, nc.Eval.FN,
			nc.Eval.ATP(), nc.Eval.PPV(), nc.Eval.UniqueTP)
		for _, r := range nc.Strings() {
			fmt.Fprintf(out, "  %s\n", r)
		}
	}
	return nil
}

// parsePlain reads "hostname asn [address]" lines.
func parsePlain(r io.Reader) ([]core.Item, error) {
	var items []core.Item
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want hostname asn [address]", lineno)
		}
		a, err := asn.Parse(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		it := core.Item{Hostname: fields[0], ASN: a}
		if len(fields) >= 3 {
			addr, err := netip.ParseAddr(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
			it.Addr = addr
		}
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return items, nil
}
