package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoiho/internal/core"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const plainTraining = `# hostname asn [address]
as701-nyc-xe0.example.net 701
as3356-lax-ge3.example.net 3356
as7018-fra-te1.example.net 7018
as1299-lhr-xe2.example.net 1299
as2914-sin-hu0.example.net 2914
core1.nyc.example.net 64512
`

func TestRunPlain(t *testing.T) {
	path := writeFile(t, "train.txt", plainTraining)
	var out bytes.Buffer
	if err := run(context.Background(), []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "example.net: good") {
		t.Errorf("output:\n%s", text)
	}
	if !strings.Contains(text, `as(\d+)-`) {
		t.Errorf("regex missing:\n%s", text)
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	path := writeFile(t, "train.txt", plainTraining)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	ncs, err := core.UnmarshalNCs(out.Bytes())
	if err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(ncs) != 1 || ncs[0].Suffix != "example.net" {
		t.Errorf("ncs = %+v", ncs)
	}
}

func TestRunNamesMode(t *testing.T) {
	path := writeFile(t, "names.txt", `
vodafone-ic-1.c.telia.net vodafone
bloomberg-ic-2.c.telia.net bloomberg
comcast-ic-3.c.telia.net comcast
akamai-ic-4.c.telia.net akamai
`)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-names", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `([a-z]+)`) {
		t.Errorf("output:\n%s", out.String())
	}
	// -names requires plain format.
	if err := run(context.Background(), []string{"-names", "-format", "itdk", path}, &out); err == nil {
		t.Error("itdk + names should error")
	}
}

func TestRunWithAddressAndIPFilter(t *testing.T) {
	// The address column disqualifies IP-fragment extractions.
	path := writeFile(t, "train.txt", `
50-236-216-122-static.hfc.cb.net 122 50.236.216.122
50-236-216-95-static.hfc.cb.net 95 50.236.216.95
50-236-217-14-static.hfc.cb.net 14 50.236.217.14
50-236-217-33-static.hfc.cb.net 33 50.236.217.33
`)
	var out bytes.Buffer
	if err := run(context.Background(), []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "cb.net:") {
		t.Errorf("IP fragments learned as a convention:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                        // no file
		{"-format", "bogus", "x"}, // unknown format
		{filepath.Join(t.TempDir(), "missing.txt")}, // missing file
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
	bad := writeFile(t, "bad.txt", "only-one-field\n")
	var out bytes.Buffer
	if err := run(context.Background(), []string{bad}, &out); err == nil {
		t.Error("malformed line should error")
	}
	badASN := writeFile(t, "bad2.txt", "host.x.net notanasn\n")
	if err := run(context.Background(), []string{badASN}, &out); err == nil {
		t.Error("bad ASN should error")
	}
	badAddr := writeFile(t, "bad3.txt", "host.x.net 100 notanip\n")
	if err := run(context.Background(), []string{badAddr}, &out); err == nil {
		t.Error("bad address should error")
	}
}

func TestRunCustomPSL(t *testing.T) {
	pslPath := writeFile(t, "psl.dat", "net\nexample.net\n")
	// With example.net itself a public suffix, the registered domain of
	// the hostnames becomes <label>.example.net per hostname: no suffix
	// accumulates 4+ items, so nothing is learned.
	train := writeFile(t, "train.txt", plainTraining)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-psl", pslPath, train}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "example.net: good") {
		t.Errorf("custom PSL ignored:\n%s", out.String())
	}
}

func TestRunAblationFlags(t *testing.T) {
	path := writeFile(t, "train.txt", plainTraining)
	for _, flag := range []string{"-no-merge", "-no-classes", "-no-sets", "-no-typo-credit"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{flag, path}, &out); err != nil {
			t.Errorf("run(%s): %v", flag, err)
		}
	}
}

func TestRunSaveApply(t *testing.T) {
	// Learn + save, then apply the saved corpus to unseen hostnames.
	train := writeFile(t, "train.txt", plainTraining)
	ncsPath := filepath.Join(t.TempDir(), "ncs.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-save", ncsPath, train}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ncsPath)
	if err != nil {
		t.Fatal(err)
	}
	if ncs, err := core.UnmarshalNCs(data); err != nil || len(ncs) != 1 {
		t.Fatalf("saved corpus: ncs=%v err=%v", ncs, err)
	}

	hosts := writeFile(t, "hosts.txt", `
# PTR sweep; extra columns are ignored
as64500-ams-xe9.example.net 192.0.2.1
lo0.fra.example.net
as65000-nyc-ge1.example.net
not-this-suffix.example.org
`)
	out.Reset()
	if err := run(context.Background(), []string{"-apply", ncsPath, hosts}, &out); err != nil {
		t.Fatal(err)
	}
	want := "as64500-ams-xe9.example.net\t64500\nas65000-nyc-ge1.example.net\t65000\n"
	if out.String() != want {
		t.Errorf("apply output:\n%q\nwant:\n%q", out.String(), want)
	}
}

func TestRunSaveBinaryApply(t *testing.T) {
	// -save to a .hbc path (and -save-format bin) writes the binary
	// corpus; -apply sniffs the format and serves it identically.
	train := writeFile(t, "train.txt", plainTraining)
	hbcPath := filepath.Join(t.TempDir(), "ncs.hbc")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-save", hbcPath, train}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(hbcPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 4 || string(data[:3]) != "HBC" {
		t.Fatalf("-save ncs.hbc wrote %.8q, want HBC magic", data)
	}

	// -save-format bin forces the binary form onto any extension.
	forcedPath := filepath.Join(t.TempDir(), "ncs.json")
	if err := run(context.Background(), []string{"-save", forcedPath, "-save-format", "bin", train}, &out); err != nil {
		t.Fatal(err)
	}
	forced, err := os.ReadFile(forcedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(forced[:3]) != "HBC" {
		t.Fatalf("-save-format bin wrote %.8q, want HBC magic", forced)
	}

	hosts := writeFile(t, "hosts.txt", "as64500-ams-xe9.example.net\nlo0.fra.example.net\n")
	out.Reset()
	if err := run(context.Background(), []string{"-apply", hbcPath, hosts}, &out); err != nil {
		t.Fatal(err)
	}
	if want := "as64500-ams-xe9.example.net\t64500\n"; out.String() != want {
		t.Errorf("apply output %q, want %q", out.String(), want)
	}
}

func TestRunApplyClassRestriction(t *testing.T) {
	// A hand-written corpus with one good and one poor convention.
	ncsPath := writeFile(t, "ncs.json", `[
  {"suffix":"good.net","regexes":["^as(\\d+)\\.good\\.net$"],"class":"good"},
  {"suffix":"poor.net","regexes":["^as(\\d+)\\.poor\\.net$"],"class":"poor"}
]`)
	hosts := writeFile(t, "hosts.txt", "as100.good.net\nas200.poor.net\n")

	cases := []struct {
		classes string
		want    string
	}{
		{"all", "as100.good.net\t100\nas200.poor.net\t200\n"},
		{"usable", "as100.good.net\t100\n"},
		{"good", "as100.good.net\t100\n"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-apply", ncsPath, "-classes", c.classes, hosts}, &out); err != nil {
			t.Fatalf("-classes %s: %v", c.classes, err)
		}
		if out.String() != c.want {
			t.Errorf("-classes %s:\n%q\nwant:\n%q", c.classes, out.String(), c.want)
		}
	}

	var out bytes.Buffer
	if err := run(context.Background(), []string{"-apply", ncsPath, "-classes", "bogus", hosts}, &out); err == nil {
		t.Error("bogus -classes should error")
	}
	if err := run(context.Background(), []string{"-apply", filepath.Join(t.TempDir(), "missing.json"), hosts}, &out); err == nil {
		t.Error("missing corpus file should error")
	}
	bad := writeFile(t, "bad.json", "{not json")
	if err := run(context.Background(), []string{"-apply", bad, hosts}, &out); err == nil {
		t.Error("malformed corpus should error")
	}
}

func TestRunMatchesDump(t *testing.T) {
	path := writeFile(t, "train.txt", plainTraining)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-matches", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "TP  as701-nyc-xe0.example.net") {
		t.Errorf("per-hostname dump missing:\n%s", text)
	}
	if !strings.Contains(text, "train=701 extracted=701") {
		t.Errorf("extraction columns missing:\n%s", text)
	}
}
