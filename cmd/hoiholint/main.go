// Command hoiholint runs hoiho's project-specific static analyzers over
// the whole module. The pass is typed and interprocedural: it builds a
// call graph with go/types (method values, interface dispatch, and
// closures resolved) and runs ten analyzers over it — determinism of
// map iteration (detmap), RNG seeding discipline (rngseed),
// compile-once regex invariants (recompile), WaitGroup/shard-pattern
// hygiene (wghygiene), panic policy (panicguard), the cancellation
// contract on exported pipeline entry points (ctxflow), the zero-alloc
// hot-path proof (hotalloc), lock-order and atomic-mixing discipline
// (lockorder), error qualification and %w wrapping (errwrap), and
// goroutine send cancellation arms (gororeturn). See internal/analysis
// for the rules and the //hoiho:<verb> annotation grammar, and
// DESIGN.md §14 for the driver design.
//
// Usage:
//
//	go run ./cmd/hoiholint ./...
//	go run ./cmd/hoiholint -json -checkroots -baseline lint.baseline.json ./...
//	go run ./cmd/hoiholint -graph '(*hoiho/internal/extract.Corpus).Extract' | dot -Tsvg
//
// The package pattern is accepted for familiarity but the tool always
// analyzes every package in the enclosing module. -checkroots makes an
// unresolved analysis root (a renamed extraction entry point) a hard
// failure instead of a silently disabled analyzer. -baseline subtracts
// a committed set of accepted findings (see lint.baseline.json);
// -update-baseline rewrites that file from the current findings. Exits
// 1 when there are findings, 2 when the module cannot be loaded, a
// root does not resolve, or a flag is misused.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hoiho/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hoiholint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	suggest := fs.Bool("suggest", false, "print the suppression annotation to add for each finding")
	dir := fs.String("C", ".", "directory inside the module to lint")
	graphRoot := fs.String("graph", "", "print the typed call graph reachable from the named root (a types.Func full name) as Graphviz DOT and exit")
	baselinePath := fs.String("baseline", "", "JSON baseline of accepted findings to subtract from the output")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit")
	checkRoots := fs.Bool("checkroots", false, "exit 2 when a configured analysis root does not resolve to a declared function")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "hoiholint:", err)
		return 2
	}
	prog, err := analysis.LoadModule(root, analysis.Default())
	if err != nil {
		fmt.Fprintln(stderr, "hoiholint:", err)
		return 2
	}

	if *graphRoot != "" {
		dot, err := prog.CallGraph().DOT(*graphRoot)
		if err != nil {
			fmt.Fprintln(stderr, "hoiholint:", err)
			return 2
		}
		fmt.Fprint(stdout, dot)
		return 0
	}
	if *checkRoots {
		if missing := prog.UnresolvedRoots(); len(missing) > 0 {
			for _, m := range missing {
				fmt.Fprintf(stderr, "hoiholint: analysis root %q does not resolve to a declared function (renamed without updating the lint config?)\n", m)
			}
			return 2
		}
	}

	diags := prog.Run(analysis.Analyzers())

	if *updateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "hoiholint: -update-baseline requires -baseline <path>")
			return 2
		}
		if err := writeBaseline(*baselinePath, root, diags); err != nil {
			fmt.Fprintln(stderr, "hoiholint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "hoiholint: baseline %s rewritten with %d finding(s)\n", *baselinePath, len(diags))
		return 0
	}
	if *baselinePath != "" {
		diags, err = subtractBaseline(*baselinePath, root, diags)
		if err != nil {
			fmt.Fprintln(stderr, "hoiholint:", err)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "hoiholint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			if *suggest && d.Suggest != "" {
				fmt.Fprintf(stdout, "\tsuppress with: %s\n", d.Suggest)
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hoiholint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
