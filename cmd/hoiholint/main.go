// Command hoiholint runs hoiho's project-specific static analyzers over
// the whole module: determinism of map iteration (detmap), RNG seeding
// discipline (rngseed), compile-once regex invariants (recompile),
// WaitGroup/shard-pattern hygiene (wghygiene), panic policy
// (panicguard), and the cancellation contract on exported pipeline
// entry points (ctxflow). See internal/analysis for the rules and the
// //hoiho:<verb>-ok annotation grammar, and DESIGN.md §9 for why the
// value-pinned figures depend on them.
//
// Usage:
//
//	go run ./cmd/hoiholint ./...
//
// The package pattern is accepted for familiarity but the tool always
// analyzes every package in the enclosing module. Exits 1 when there
// are findings, 2 when the module cannot be loaded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hoiho/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hoiholint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	suggest := fs.Bool("suggest", false, "print the suppression annotation to add for each finding")
	dir := fs.String("C", ".", "directory inside the module to lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "hoiholint:", err)
		return 2
	}
	prog, err := analysis.LoadModule(root, analysis.Default())
	if err != nil {
		fmt.Fprintln(stderr, "hoiholint:", err)
		return 2
	}
	diags := prog.Run(analysis.Analyzers())

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "hoiholint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			if *suggest && d.Suggest != "" {
				fmt.Fprintf(stdout, "\tsuppress with: %s\n", d.Suggest)
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hoiholint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
