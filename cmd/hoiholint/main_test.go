package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoiho/internal/analysis"
)

// TestSelfCheckModuleClean runs the full pass over the real module —
// the same invocation CI uses — and requires zero findings: every real
// violation is fixed and every intentional one is annotated.
func TestSelfCheckModuleClean(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.LoadModule(root, analysis.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) < 20 {
		t.Fatalf("loaded only %d packages; module discovery is broken", len(prog.Packages))
	}
	for _, d := range prog.Run(analysis.Analyzers()) {
		t.Errorf("finding on clean module: %s", d)
	}
}

// writeTempModule builds a throwaway module with a recompile-in-loop
// violation (the analyzers that run module-wide regardless of package
// configuration).
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"main.go": `package main

import "regexp"

func main() {
	for _, p := range []string{"a", "b"} {
		_ = regexp.MustCompile(p)
	}
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestExitNonzeroOnFindings(t *testing.T) {
	dir := writeTempModule(t)
	stdout, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	if code := run([]string{"-C", dir}, stdout, os.Stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeTempModule(t)
	path := filepath.Join(t.TempDir(), "out.json")
	stdout, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-json", "-C", dir}, stdout, os.Stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	stdout.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, data)
	}
	if len(diags) != 1 || diags[0].Check != "recompile" {
		t.Fatalf("diags = %+v, want one recompile finding", diags)
	}
}

func TestLoadErrorExitCode(t *testing.T) {
	dir := t.TempDir() // no go.mod anywhere under a temp root
	stdout, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-C", dir}, stdout, devnull); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// outFile returns a temp *os.File plus a closure that reads what was
// written to it.
func outFile(t *testing.T) (*os.File, func() string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return f, func() string {
		f.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

// TestBaselineRoundTrip: -update-baseline accepts the current findings,
// a subsequent run with -baseline is clean, and the acceptance survives
// line shifts because entries are keyed by message, not line number.
func TestBaselineRoundTrip(t *testing.T) {
	dir := writeTempModule(t)
	base := filepath.Join(t.TempDir(), "lint.baseline.json")

	stdout, _ := outFile(t)
	if code := run([]string{"-C", dir, "-baseline", base, "-update-baseline"}, stdout, os.Stderr); code != 0 {
		t.Fatalf("-update-baseline exit code = %d, want 0", code)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, data)
	}
	if len(entries) != 1 || entries[0].Check != "recompile" || entries[0].File != "main.go" || entries[0].Count != 1 {
		t.Fatalf("baseline entries = %+v, want one recompile finding in main.go", entries)
	}

	stdout, _ = outFile(t)
	if code := run([]string{"-C", dir, "-baseline", base}, stdout, os.Stderr); code != 0 {
		t.Fatalf("baselined run exit code = %d, want 0", code)
	}

	// Shift the finding to a different line; the baseline must still
	// absorb it.
	mainGo := filepath.Join(dir, "main.go")
	src, err := os.ReadFile(mainGo)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mainGo, append([]byte("// shifted by an unrelated edit\n\n"), src...), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, _ = outFile(t)
	if code := run([]string{"-C", dir, "-baseline", base}, stdout, os.Stderr); code != 0 {
		t.Fatalf("baselined run after line shift exit code = %d, want 0", code)
	}

	// Without the baseline the finding still fails the run.
	stdout, _ = outFile(t)
	if code := run([]string{"-C", dir}, stdout, os.Stderr); code != 1 {
		t.Fatalf("unbaselined run exit code = %d, want 1", code)
	}
}

func TestUpdateBaselineRequiresPath(t *testing.T) {
	dir := writeTempModule(t)
	stdout, _ := outFile(t)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-C", dir, "-update-baseline"}, stdout, devnull); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestGraphDump: -graph prints a DOT digraph rooted at the named
// function and exits 0 without linting.
func TestGraphDump(t *testing.T) {
	dir := writeTempModule(t)
	stdout, read := outFile(t)
	if code := run([]string{"-C", dir, "-graph", "tmpmod.main"}, stdout, os.Stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	out := read()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "tmpmod.main") {
		t.Fatalf("-graph output does not look like DOT:\n%s", out)
	}
}

func TestGraphUnresolvedRoot(t *testing.T) {
	dir := writeTempModule(t)
	stdout, _ := outFile(t)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-C", dir, "-graph", "tmpmod.noSuchFunc"}, stdout, devnull); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestCheckRootsUnresolved: hoiho's configured roots do not exist in
// the throwaway module, so -checkroots must hard-fail instead of
// silently disabling the hot-path analyzers.
func TestCheckRootsUnresolved(t *testing.T) {
	dir := writeTempModule(t)
	stdout, _ := outFile(t)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-C", dir, "-checkroots"}, stdout, devnull); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestCheckRootsResolveOnModule mirrors the CI gate: every configured
// root must resolve against the real module.
func TestCheckRootsResolveOnModule(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.LoadModule(root, analysis.Default())
	if err != nil {
		t.Fatal(err)
	}
	if missing := prog.UnresolvedRoots(); len(missing) > 0 {
		t.Fatalf("unresolved analysis roots: %v", missing)
	}
}
