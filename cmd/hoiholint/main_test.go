package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hoiho/internal/analysis"
)

// TestSelfCheckModuleClean runs the full pass over the real module —
// the same invocation CI uses — and requires zero findings: every real
// violation is fixed and every intentional one is annotated.
func TestSelfCheckModuleClean(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.LoadModule(root, analysis.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) < 20 {
		t.Fatalf("loaded only %d packages; module discovery is broken", len(prog.Packages))
	}
	for _, d := range prog.Run(analysis.Analyzers()) {
		t.Errorf("finding on clean module: %s", d)
	}
}

// writeTempModule builds a throwaway module with a recompile-in-loop
// violation (the analyzers that run module-wide regardless of package
// configuration).
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"main.go": `package main

import "regexp"

func main() {
	for _, p := range []string{"a", "b"} {
		_ = regexp.MustCompile(p)
	}
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestExitNonzeroOnFindings(t *testing.T) {
	dir := writeTempModule(t)
	stdout, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	if code := run([]string{"-C", dir}, stdout, os.Stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeTempModule(t)
	path := filepath.Join(t.TempDir(), "out.json")
	stdout, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-json", "-C", dir}, stdout, os.Stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	stdout.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, data)
	}
	if len(diags) != 1 || diags[0].Check != "recompile" {
		t.Fatalf("diags = %+v, want one recompile finding", diags)
	}
}

func TestLoadErrorExitCode(t *testing.T) {
	dir := t.TempDir() // no go.mod anywhere under a temp root
	stdout, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-C", dir}, stdout, devnull); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
