package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hoiho/internal/analysis"
)

// A baseline entry identifies an accepted finding by check,
// module-relative file, and message — deliberately NOT by line number,
// so unrelated edits that shift code do not invalidate the baseline.
// Count carries multiplicity: n identical findings in one file consume
// n baseline slots, so a refactor that introduces another copy of an
// accepted finding still fails the gate.
type baselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

func baselineKey(check, file, message string) string {
	return check + "\x00" + file + "\x00" + message
}

// relFile maps a diagnostic's absolute filename to the module-relative
// slash path used in baseline files, so baselines are portable across
// checkouts.
func relFile(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// writeBaseline rewrites path with the current findings, sorted for
// stable diffs.
func writeBaseline(path, root string, diags []analysis.Diagnostic) error {
	counts := make(map[string]*baselineEntry)
	for _, d := range diags {
		f := relFile(root, d.Pos.Filename)
		k := baselineKey(d.Check, f, d.Message)
		if e := counts[k]; e != nil {
			e.Count++
			continue
		}
		counts[k] = &baselineEntry{Check: d.Check, File: f, Message: d.Message, Count: 1}
	}
	entries := make([]baselineEntry, 0, len(counts))
	for _, e := range counts {
		entries = append(entries, *e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// subtractBaseline drops findings accepted by the baseline, consuming
// multiplicity per (check, file, message) key.
func subtractBaseline(path, root string, diags []analysis.Diagnostic) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	budget := make(map[string]int)
	for _, e := range entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey(e.Check, e.File, e.Message)] += n
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		k := baselineKey(d.Check, relFile(root, d.Pos.Filename), d.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	return out, nil
}
