// Package hoiho_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Benchmarks run the same pipelines as
// cmd/experiments at a reduced topology scale so that -bench=. completes
// quickly; run `go run ./cmd/experiments -scale 1` for the full-size
// report (EXPERIMENTS.md).
package hoiho_test

import (
	"bytes"
	"context"
	"testing"

	"hoiho/internal/asnames"
	"hoiho/internal/core"
	"hoiho/internal/experiments"
	"hoiho/internal/extract"
	"hoiho/internal/psl"
)

// benchScale keeps -bench=. fast; shapes are unchanged.
const benchScale = experiments.Scale(0.25)

func lastEraRun(b *testing.B) *experiments.Run {
	b.Helper()
	eras := experiments.ITDKEras()
	run, err := experiments.RunITDKEra(context.Background(), eras[len(eras)-1], benchScale, psl.Default())
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// figure4Items is the training data of the paper's worked example.
func figure4Items() []core.Item { return experiments.Figure4Items() }

// BenchmarkFigure4 regenerates the paper's four-phase walkthrough: the
// full learning pipeline on the figure's 16 hostnames, ending at ATP 8.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set, err := core.NewSet("equinix.com", figure4Items(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		nc, err := set.Learn(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if nc == nil || nc.Eval.ATP() != 8 {
			b.Fatalf("NC = %+v", nc)
		}
		if i == 0 {
			b.Logf("figure 4 NC: %v (ATP=%d)", nc.Strings(), nc.Eval.ATP())
		}
	}
}

// BenchmarkFigure5 regenerates the NC-classification series over all 17
// ITDK eras plus the two PeeringDB snapshots.
func BenchmarkFigure5(b *testing.B) {
	list := psl.Default()
	for i := 0; i < b.N; i++ {
		f5, _, _, err := experiments.Figure5(context.Background(), benchScale, list)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range f5 {
				b.Logf("%-14s %-9s good=%d promising=%d poor=%d", r.Name, r.Method, r.Good, r.Promising, r.Poor)
			}
		}
	}
}

// BenchmarkFigure6 regenerates the training-agreement series (PPV with
// and without sibling credit).
func BenchmarkFigure6(b *testing.B) {
	list := psl.Default()
	for i := 0; i < b.N; i++ {
		_, f6, _, err := experiments.Figure5(context.Background(), benchScale, list)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range f6 {
				b.Logf("%-14s %-9s ppv=%.3f +siblings=%.3f (m=%d)", r.Name, r.Method, r.PPV, r.PPVSibling, r.Matches)
			}
		}
	}
}

// BenchmarkTable1 regenerates the embedding-style taxonomy.
func BenchmarkTable1(b *testing.B) {
	list := psl.Default()
	itdkRun := lastEraRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdbRun, err := experiments.RunPDBEra(context.Background(), "pdb-bench", itdkRun.World, 502, list)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Table1(itdkRun, pdbRun)
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-8s usable %5.1f%% single %5.1f%%", r.Style, r.UsablePct, r.SinglePct)
			}
		}
	}
}

// BenchmarkTable2 regenerates the ground-truth validation of the modified
// bdrmapIT's decisions.
func BenchmarkTable2(b *testing.B) {
	run := lastEraRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunSection5(context.Background(), run)
		rows, correct, total := experiments.Table2(run, res.Result)
		if total == 0 {
			b.Fatal("no validated decisions")
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-18s TP=%d FN=%d FP=%d TN=%d", r.Label, r.CorrectUsed, r.CorrectUnused, r.IncorrectUsed, r.IncorrectUnused)
			}
			b.Logf("correct: %d/%d (%s)", correct, total, experiments.Pct(correct, total))
		}
	}
}

// BenchmarkSection5 regenerates the §5 headline numbers: agreement before
// and after feeding conventions into bdrmapIT.
func BenchmarkSection5(b *testing.B) {
	run := lastEraRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunSection5(context.Background(), run)
		if res.AgreementAfter <= res.AgreementBefore {
			b.Fatalf("no improvement: %.3f -> %.3f", res.AgreementBefore, res.AgreementAfter)
		}
		if i == 0 {
			b.Logf("agreement %.3f -> %.3f (%s -> %s); used %d/%d",
				res.AgreementBefore, res.AgreementAfter,
				experiments.OneIn(res.ErrOneInBefore), experiments.OneIn(res.ErrOneInAfter),
				res.UsedTotal, res.Decisions)
		}
	}
}

// BenchmarkSection4SuffixOrigin regenerates the single-NC suffix-origin
// analysis.
func BenchmarkSection4SuffixOrigin(b *testing.B) {
	run := lastEraRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		own, other := experiments.SuffixOriginAnalysis(run)
		if i == 0 {
			b.Logf("single NCs: own-org %d, other %d (%s)", own, other, experiments.Pct(own, own+other))
		}
	}
}

// BenchmarkFigure7Expansion regenerates the §7 full-PTR expansion.
func BenchmarkFigure7Expansion(b *testing.B) {
	run := lastEraRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(context.Background(), run)
		if err != nil {
			b.Fatal(err)
		}
		if res.FullMatches < res.ObservedMatches {
			b.Fatal("expansion went backward")
		}
		if i == 0 {
			b.Logf("observed=%d full=%d factor=%.2f", res.ObservedMatches, res.FullMatches, res.Factor)
		}
	}
}

// BenchmarkLearnLargeSuffix is the PR-2 acceptance benchmark: the full
// learning pipeline on a single dominant ~200-item suffix, the workload
// where per-trial regex re-execution in the set phase dominates
// end-to-end learning time. BENCH_PR2.json records its before/after.
func BenchmarkLearnLargeSuffix(b *testing.B) {
	items := experiments.LargeSuffixItems(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set, err := core.NewSet("bigcarrier.net", items, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		nc, err := set.Learn(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if nc == nil {
			b.Fatal("no NC learned")
		}
		if i == 0 {
			b.Logf("large-suffix NC: %v (TP=%d FP=%d FN=%d ATP=%d)",
				nc.Strings(), nc.Eval.TP, nc.Eval.FP, nc.Eval.FN, nc.Eval.ATP())
		}
	}
}

// BenchmarkLearnFigure4Phases isolates the cumulative cost of each
// learning phase on the figure-4 working example by toggling the
// ablation switches: phase 1 only, +merge (§3.3), +classes (§3.4), and
// the full pipeline with the §3.5 set phase.
func BenchmarkLearnFigure4Phases(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"phase1-only", core.Options{DisableMerge: true, DisableClasses: true, DisableSets: true}},
		{"plus-merge", core.Options{DisableClasses: true, DisableSets: true}},
		{"plus-classes", core.Options{DisableSets: true}},
		{"full", core.Options{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			items := figure4Items()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				set, err := core.NewSet("equinix.com", items, c.opts)
				if err != nil {
					b.Fatal(err)
				}
				if nc, err := set.Learn(context.Background()); err != nil || nc == nil {
					b.Fatalf("nc=%v err=%v", nc, err)
				}
			}
		})
	}
}

// BenchmarkCorpusExtract pins the serving-engine speedup: the indexed,
// sharded Corpus batch path versus the naive per-hostname scan over every
// NC that the pre-engine consumers used (examples/openintel's old loop).
// The acceptance bar is >= 5x on a 128-NC / 100k-hostname batch.
func BenchmarkCorpusExtract(b *testing.B) {
	ncs, hosts := experiments.CorpusWorkload(128, 100_000)

	b.Run("corpus", func(b *testing.B) {
		corpus := extract.New(ncs)
		corpus.Precompile() // warm the compile-once caches outside the timer
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			hits = 0
			rs, err := corpus.ExtractBatch(context.Background(), hosts)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rs {
				if r.OK {
					hits++
				}
			}
		}
		b.ReportMetric(float64(len(hosts))*float64(b.N)/b.Elapsed().Seconds(), "hosts/s")
		if hits != len(hosts)/2 {
			b.Fatalf("hits = %d, want %d", hits, len(hosts)/2)
		}
	})

	b.Run("linear-scan", func(b *testing.B) {
		corpus := extract.New(ncs)
		corpus.Precompile() // same pre-compiled regexes as above
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			hits = 0
			for _, host := range hosts {
				for _, nc := range ncs {
					if _, ok := nc.Extract(host); ok {
						hits++
						break
					}
				}
			}
		}
		b.ReportMetric(float64(len(hosts))*float64(b.N)/b.Elapsed().Seconds(), "hosts/s")
		if hits != len(hosts)/2 {
			b.Fatalf("hits = %d, want %d", hits, len(hosts)/2)
		}
	})
}

// BenchmarkCorpusColdStart pins the PR-7 startup speedup: time from
// serialized corpus bytes to a ready-to-serve Corpus, for the stable
// JSON form (parse + index + compile every matcher) versus the HBC
// binary form (decode pre-compiled programs; no JSON, no regexp
// compilation). The acceptance bar is >= 5x on the same 128-NC corpus.
func BenchmarkCorpusColdStart(b *testing.B) {
	ncs, _ := experiments.CorpusWorkload(128, 8)
	corpus := extract.New(ncs)
	var jsonBuf, hbcBuf bytes.Buffer
	if err := corpus.Save(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	if err := corpus.SaveBinary(&hbcBuf); err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		data []byte
	}{
		{"json", jsonBuf.Bytes()},
		{"hbc", hbcBuf.Bytes()},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(c.data)))
			for i := 0; i < b.N; i++ {
				loaded, err := extract.Load(bytes.NewReader(c.data))
				if err != nil {
					b.Fatal(err)
				}
				if len(loaded.Suffixes()) != 128 {
					b.Fatalf("loaded %d suffixes", len(loaded.Suffixes()))
				}
			}
		})
	}
}

// ablationBench learns the last era's conventions under modified learner
// options and reports the aggregate ATP, quantifying each design choice
// from DESIGN.md.
func ablationBench(b *testing.B, opts core.Options, label string) {
	list := psl.Default()
	run := lastEraRun(b)
	groups, suffixes := core.GroupItems(list, run.Items)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atp, ncs, regexes := 0, 0, 0
		for _, suf := range suffixes {
			set, err := core.NewSet(suf, groups[suf], opts)
			if err != nil || set.Len() < 4 {
				continue
			}
			if nc, _ := set.Learn(context.Background()); nc != nil {
				atp += nc.Eval.ATP()
				ncs++
				regexes += len(nc.Regexes)
			}
		}
		if i == 0 {
			// ATP measures coverage; the regex count measures the
			// simplicity the paper's merge phase buys (appendix A).
			b.Logf("%s: %d NCs, total ATP %d, %d regexes", label, ncs, atp, regexes)
		}
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	ablationBench(b, core.Options{}, "baseline")
}

func BenchmarkAblationNoMerge(b *testing.B) {
	ablationBench(b, core.Options{DisableMerge: true}, "no merge (§3.3 off)")
}

func BenchmarkAblationNoClasses(b *testing.B) {
	ablationBench(b, core.Options{DisableClasses: true}, "no character classes (§3.4 off)")
}

func BenchmarkAblationNoSets(b *testing.B) {
	ablationBench(b, core.Options{DisableSets: true}, "no regex sets (§3.5 off)")
}

func BenchmarkAblationNoTypoCredit(b *testing.B) {
	ablationBench(b, core.Options{DisableTypoCredit: true}, "no typo credit (§3.1 rule off)")
}

func BenchmarkAblationRankPPV(b *testing.B) {
	ablationBench(b, core.Options{RankByPPV: true}, "rank by PPV instead of ATP")
}

// BenchmarkAblationReasonableness compares the §5 reasonableness rule
// against trusting every extracted ASN, counting wrong hostnames accepted.
func BenchmarkAblationReasonableness(b *testing.B) {
	run := lastEraRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunSection5(context.Background(), run)
		wrongUsed, wrongTotal := 0, 0
		for _, d := range res.Result.Decisions {
			ifc := run.World.Interface(d.Addr)
			if ifc == nil {
				continue
			}
			truth := ifc.Router.Owner
			if d.Extracted != truth && !run.World.Orgs.Siblings(d.Extracted, truth) {
				wrongTotal++
				if d.Used {
					wrongUsed++
				}
			}
		}
		if i == 0 {
			b.Logf("rule accepted %d/%d wrong hostnames; 'always trust' accepts %d/%d",
				wrongUsed, wrongTotal, wrongTotal, wrongTotal)
		}
	}
}

// BenchmarkEndToEnd measures the whole pipeline for one era: world,
// probing, ITDK assembly, annotation, learning.
func BenchmarkEndToEnd(b *testing.B) {
	list := psl.Default()
	eras := experiments.ITDKEras()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunITDKEra(context.Background(), eras[len(eras)-1], benchScale, list)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			c := experiments.Count(run.NCs)
			b.Logf("end-to-end: %d items, %d NCs (%d good)", len(run.Items), len(run.NCs), c.Good)
		}
	}
}

// BenchmarkSection7Names exercises the §7 extension: learning AS-name
// conventions (figure 1's telia.net style).
func BenchmarkSection7Names(b *testing.B) {
	items := []asnames.Item{
		{Hostname: "vodafone-ic-324966-prs-b1.c.telia.net", Name: "vodafone"},
		{Hostname: "bloomberg-ic-324982-ash-b1.c.telia.net", Name: "bloomberg"},
		{Hostname: "comcast-ic-324571-sjo-b21.c.telia.net", Name: "comcast"},
		{Hostname: "akamai-ic-301765-nyk-b4.c.telia.net", Name: "akamai"},
		{Hostname: "netflix-ic-315133-fra-b5.c.telia.net", Name: "netflix"},
		{Hostname: "vodafone.mil51.seabone.net", Name: "vodafone"},
		{Hostname: "orange.pal3.seabone.net", Name: "orange"},
		{Hostname: "telecomitalia.mia2.seabone.net", Name: "telecomitalia"},
		{Hostname: "claro.gru11.seabone.net", Name: "claro"},
		{Hostname: "fastweb.mil51.seabone.net", Name: "fastweb"},
	}
	learner := &asnames.Learner{}
	for i := 0; i < b.N; i++ {
		ncs, err := learner.LearnAll(psl.Default(), items)
		if err != nil || len(ncs) != 2 {
			b.Fatalf("ncs=%d err=%v", len(ncs), err)
		}
		if i == 0 {
			for _, nc := range ncs {
				b.Logf("%s: %v", nc.Suffix, nc.Strings())
			}
		}
	}
}
