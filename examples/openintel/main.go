// openintel: the paper's §7 expansion. Conventions learned from the
// traceroute-derived ITDK are applied to the full PTR zone (the
// OpenINTEL-style sweep of all delegated space), revealing interconnection
// hostnames that traceroute never observed — backup ports, links not on
// any best path, and exchanges outside the probed region.
//
//	go run ./examples/openintel
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"sort"

	"hoiho/internal/asn"
	"hoiho/internal/core"
	"hoiho/internal/extract"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtaa"
	"hoiho/internal/topo"
)

func main() {
	cfg := topo.DefaultConfig(77)
	cfg.BackupLinkRate = 2.5 // redundant ports only a PTR sweep can see
	world, err := topo.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	traces := world.TraceAll()
	aliases := itdk.TruthAliases(world).Degrade(1, 0.85)
	ptr := func(a netip.Addr) string {
		if ifc := world.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	}
	graph := itdk.BuildGraph(traces, aliases, world.Table, ptr)
	snap := itdk.FromGraph(graph, rtaa.Annotate(graph, world.Rel), "oi", "rtaa")

	learner := &core.Learner{}
	ncs, err := learner.LearnAll(context.Background(), psl.Default(), snap.TrainingItems())
	if err != nil {
		log.Fatal(err)
	}
	// Index the usable conventions once; the corpus engine owns suffix
	// lookup and regex compilation from here on.
	corpus := extract.New(ncs, extract.UsableOnly())
	fmt.Printf("learned %d usable conventions from the traceroute view\n", corpus.Len())

	// Traceroute view: single-hostname fast path.
	observed := 0
	for _, host := range graph.Hostnames {
		if _, ok := corpus.Extract(context.Background(), host); ok {
			observed++
		}
	}

	// Full PTR zone: the million-name sweep goes through the sharded
	// batch API, results aligned with the input order.
	var (
		hosts []string
		addrs []netip.Addr
	)
	for _, ifc := range world.Interfaces() {
		if ifc.Hostname == "" {
			continue
		}
		hosts = append(hosts, ifc.Hostname)
		addrs = append(addrs, ifc.Addr)
	}
	full := 0
	newLinks := make(map[asn.ASN]int) // extracted ASN -> unseen-port count
	results, err := corpus.ExtractBatch(context.Background(), hosts)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		if !r.OK {
			continue
		}
		full++
		if _, seen := graph.Hostnames[addrs[i]]; !seen {
			newLinks[r.ASN]++
		}
	}
	fmt.Printf("hostnames matching a usable NC:\n")
	fmt.Printf("  traceroute-observed interfaces: %d\n", observed)
	fmt.Printf("  full PTR zone:                  %d (%.1fx)\n",
		full, float64(full)/float64(observed))

	// The hint the paper closes with: extracted ASNs on unseen ports
	// point at interconnections measurement never captured.
	type hint struct {
		asn   asn.ASN
		ports int
	}
	var hints []hint
	for a, n := range newLinks {
		hints = append(hints, hint{a, n})
	}
	sort.Slice(hints, func(i, j int) bool {
		if hints[i].ports != hints[j].ports {
			return hints[i].ports > hints[j].ports
		}
		return hints[i].asn < hints[j].asn
	})
	fmt.Printf("top ASes with interconnection ports invisible to traceroute:\n")
	for i, h := range hints {
		if i == 8 {
			break
		}
		fmt.Printf("  AS%-8v %d unseen named ports\n", h.asn, h.ports)
	}
}
