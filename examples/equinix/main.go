// Equinix: the paper's figure 4 worked example, phase by phase. The 16
// hostnames (rows a-p) train a convention for equinix.com; the final NC
// combines a merged, class-embedded regex with a second format, exactly
// as the figure shows (ATP -7 regexes become an ATP 8 convention).
//
//	go run ./examples/equinix
package main

import (
	"context"
	"fmt"
	"log"

	"hoiho/internal/core"
	"hoiho/internal/rex"
)

func main() {
	items := []core.Item{
		{Hostname: "109.sgw.equinix.com", ASN: 109},               // a
		{Hostname: "714.os.equinix.com", ASN: 714},                // b
		{Hostname: "714.me1.equinix.com", ASN: 714},               // c
		{Hostname: "p714.sgw.equinix.com", ASN: 714},              // d
		{Hostname: "s714.sgw.equinix.com", ASN: 714},              // e
		{Hostname: "p24115.mel.equinix.com", ASN: 24115},          // f
		{Hostname: "s24115.tyo.equinix.com", ASN: 24115},          // g
		{Hostname: "22822-2.tyo.equinix.com", ASN: 22282},         // h
		{Hostname: "24482-fr5-ix.equinix.com", ASN: 24482},        // i
		{Hostname: "54827-dc5-ix2.equinix.com", ASN: 54827},       // j
		{Hostname: "55247-ch3-ix.equinix.com", ASN: 55247},        // k
		{Hostname: "netflix.zh2.corp.eu.equinix.com", ASN: 2906},  // l
		{Hostname: "ipv4.dosarrest.eqix.equinix.com", ASN: 19324}, // m
		{Hostname: "8069.tyo.equinix.com", ASN: 8075},             // n
		{Hostname: "8074.hkg.equinix.com", ASN: 8075},             // o
		{Hostname: "45437-sy1-ix.equinix.com", ASN: 55923},        // p
	}
	set, err := core.NewSet("equinix.com", items, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	show := func(title string, srcs ...string) {
		regexes := make([]*rex.Regex, len(srcs))
		for i, s := range srcs {
			r, err := rex.Parse(s)
			if err != nil {
				log.Fatal(err)
			}
			regexes[i] = r
		}
		ev := set.Evaluate(regexes...)
		fmt.Printf("%s\n", title)
		for _, s := range srcs {
			fmt.Printf("    %s\n", s)
		}
		fmt.Printf("    TP=%-2d FP=%-2d FN=%-2d ATP=%d\n\n", ev.TP, ev.FP, ev.FN, ev.ATP())
	}

	fmt.Println("Phase 1: generate base regexes (§3.2)")
	show("  #1", `^(\d+)\.[^\.]+\.equinix\.com$`)
	show("  #2", `^p(\d+)\.[^\.]+\.equinix\.com$`)
	show("  #3", `^s(\d+)\.[^\.]+\.equinix\.com$`)
	show("  #4", `^(\d+)-.+\.equinix\.com$`)

	fmt.Println("Phase 2: merge regexes (§3.3)")
	show("  #5", `^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$`)

	fmt.Println("Phase 3: embed character classes (§3.4)")
	show("  #6", `^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`)

	fmt.Println("Phase 4: build regex sets (§3.5)")
	show("  #7", `^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`, `^(\d+)-.+\.equinix\.com$`)

	fmt.Println("Running the full learner:")
	nc, err := set.Learn(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if nc == nil {
		log.Fatal("no convention learned")
	}
	for _, r := range nc.Strings() {
		fmt.Println("   ", r)
	}
	fmt.Printf("    TP=%d FP=%d FN=%d ATP=%d class=%s\n",
		nc.Eval.TP, nc.Eval.FP, nc.Eval.FN, nc.Eval.ATP(), nc.Class)

	fmt.Println("\nPer-hostname outcomes under the learned NC:")
	_, exts := set.EvaluateDetailed(nc.Regexes...)
	for i, e := range exts {
		fmt.Printf("  (%c) %-35s %-4s extracted=%s\n",
			'a'+i, e.Item.Hostname, e.Outcome, orDash(e.ASN))
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
