// asnames: the paper's §7 future-work direction — learning conventions
// that embed AS *names* rather than numbers (figure 1's telia.net and
// seabone.net). Training names come from the AS-to-organization
// database, the dictionary-assisted variant of the open problem the
// paper poses.
//
//	go run ./examples/asnames
package main

import (
	"fmt"
	"log"

	"hoiho/internal/asnames"
	"hoiho/internal/psl"
)

func main() {
	items := []asnames.Item{
		// figure 1 style: neighbor name at the start (telia.net).
		{Hostname: "vodafone-ic-324966-prs-b1.c.telia.net", Name: "vodafone"},
		{Hostname: "bloomberg-ic-324982-ash-b1.c.telia.net", Name: "bloomberg"},
		{Hostname: "comcast-ic-324571-sjo-b21.c.telia.net", Name: "comcast"},
		{Hostname: "akamai-ic-301765-nyk-b4.c.telia.net", Name: "akamai"},
		{Hostname: "netflix-ic-315133-fra-b5.c.telia.net", Name: "netflix"},
		// seabone.net: bare neighbor name, then the POP.
		{Hostname: "vodafone.mil51.seabone.net", Name: "vodafone"},
		{Hostname: "orange.pal3.seabone.net", Name: "orange"},
		{Hostname: "telecomitalia.mia2.seabone.net", Name: "telecomitalia"},
		{Hostname: "claro.gru11.seabone.net", Name: "claro"},
		{Hostname: "fastweb.mil51.seabone.net", Name: "fastweb"},
		// A suffix with no name convention.
		{Hostname: "xe0-1.nyc.plaincarrier.net", Name: "vodafone"},
		{Hostname: "core1.lax.plaincarrier.net", Name: "orange"},
		{Hostname: "lo0.fra.plaincarrier.net", Name: "claro"},
		{Hostname: "ge2.lhr.plaincarrier.net", Name: "fastweb"},
	}

	learner := &asnames.Learner{}
	ncs, err := learner.LearnAll(psl.Default(), items)
	if err != nil {
		log.Fatal(err)
	}
	for _, nc := range ncs {
		fmt.Printf("%s (good=%v, TP=%d FP=%d FN=%d):\n",
			nc.Suffix, nc.Good, nc.Eval.TP, nc.Eval.FP, nc.Eval.FN)
		for _, r := range nc.Strings() {
			fmt.Println("   ", r)
		}
	}

	// Apply to hostnames the learner never saw.
	fmt.Println("\nextractions from unseen hostnames:")
	for _, nc := range ncs {
		var probe string
		switch nc.Suffix {
		case "telia.net":
			probe = "google-ic-322001-sto-b2.c.telia.net"
		case "seabone.net":
			probe = "swisscom.zur1.seabone.net"
		default:
			continue
		}
		if name, ok := nc.Extract(probe); ok {
			fmt.Printf("  %-40s -> %q\n", probe, name)
		}
	}
}
