// Quickstart: learn an ASN naming convention from a handful of router
// hostnames annotated with training ASNs, then use it to extract ASNs
// from new hostnames.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hoiho/internal/asn"
	"hoiho/internal/core"
)

func main() {
	// Training data: hostnames of router interfaces under one suffix and
	// the ASN a router-ownership method inferred for each router. The
	// operator (examplecarrier.net) labels the neighbor's ASN at the
	// start of the hostname.
	items := []core.Item{
		{Hostname: "as701-nyc-xe0.examplecarrier.net", ASN: 701},
		{Hostname: "as3356-lax-ge3.examplecarrier.net", ASN: 3356},
		{Hostname: "as7018-fra-te1.examplecarrier.net", ASN: 7018},
		{Hostname: "as1299-lhr-xe2.examplecarrier.net", ASN: 1299},
		{Hostname: "as2914-sin-hu0.examplecarrier.net", ASN: 2914},
		{Hostname: "as6762-syd-be4.examplecarrier.net", ASN: 6762},
		// Internal interfaces carry no ASN and must not produce false
		// positives.
		{Hostname: "core1.nyc.examplecarrier.net", ASN: 64512},
		{Hostname: "xe0-1.fra.examplecarrier.net", ASN: 64512},
	}

	set, err := core.NewSet("examplecarrier.net", items, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	nc, err := set.Learn(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if nc == nil {
		log.Fatal("no convention learned")
	}

	fmt.Println("learned naming convention for", nc.Suffix)
	for _, r := range nc.Strings() {
		fmt.Println("  regex:", r)
	}
	fmt.Printf("  class: %s   TP=%d FP=%d FN=%d ATP=%d PPV=%.2f\n",
		nc.Class, nc.Eval.TP, nc.Eval.FP, nc.Eval.FN, nc.Eval.ATP(), nc.Eval.PPV())

	// Apply the convention to hostnames the learner never saw.
	for _, host := range []string{
		"as174-mia-et9.examplecarrier.net",
		"as209-cdg-xe7.examplecarrier.net",
		"lo0.sjc.examplecarrier.net",
	} {
		if digits, ok := nc.Extract(host); ok {
			a, _ := asn.Parse(digits)
			fmt.Printf("  %-40s -> AS%v\n", host, a)
		} else {
			fmt.Printf("  %-40s -> no ASN embedded\n", host)
		}
	}
}
