// bdrmapit: router-ownership inference with and without hostname
// evidence (the paper's §5). Builds a synthetic Internet, probes it,
// assembles an ITDK, learns conventions, feeds them back into the
// modified bdrmapIT, and reports how often each variant matches the
// generator's ground truth for routers carrying ASN-labelled hostnames.
//
//	go run ./examples/bdrmapit
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"hoiho/internal/asn"
	"hoiho/internal/bdrmapit"
	"hoiho/internal/core"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/topo"
)

func main() {
	world, err := topo.Build(topo.DefaultConfig(2020))
	if err != nil {
		log.Fatal(err)
	}
	corpus := world.TraceAll()
	aliases := itdk.TruthAliases(world).Degrade(1, 0.7)
	ptr := func(a netip.Addr) string {
		if ifc := world.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	}
	graph := itdk.BuildGraph(corpus, aliases, world.Table, ptr)
	fmt.Printf("world: %d ASes, %d routers; observed %d nodes over %d traces\n",
		len(world.ASes), len(world.Routers), len(graph.Nodes), corpus.Len())

	ixps := make(map[asn.ASN]bool)
	for _, a := range world.ASes {
		if a.Class == topo.IXP {
			ixps[a.ASN] = true
		}
	}
	an := &bdrmapit.Annotator{Graph: graph, Rel: world.Rel, Orgs: world.Orgs, IXPs: ixps}

	// Plain bdrmapIT.
	initial := an.Annotate()

	// Learn conventions from the snapshot bdrmapIT itself annotated, as
	// the paper does, then re-process with hostname evidence.
	snap := itdk.FromGraph(graph, initial, "example", "bdrmapit")
	learner := &core.Learner{}
	ncs, err := learner.LearnAll(context.Background(), psl.Default(), snap.TrainingItems())
	if err != nil {
		log.Fatal(err)
	}
	good := 0
	for _, nc := range ncs {
		if nc.Class == core.Good {
			good++
		}
	}
	fmt.Printf("learned %d conventions (%d good)\n", len(ncs), good)
	res := an.AnnotateWithNCs(context.Background(), ncs)

	// Score both variants against ground truth, over nodes that carry at
	// least one ASN-labelled hostname (where hostname evidence can act).
	var beforeOK, afterOK, total int
	for _, n := range graph.Nodes {
		labelled := false
		for _, a := range n.Ifaces {
			if ifc := world.Interface(a); ifc != nil && ifc.EmbeddedASN != asn.None {
				labelled = true
				break
			}
		}
		if !labelled {
			continue
		}
		truth := world.OwnerOf(n.Ifaces[0])
		total++
		if res.Initial[n.ID] == truth {
			beforeOK++
		}
		if res.Annotations[n.ID] == truth {
			afterOK++
		}
	}
	fmt.Printf("ground-truth accuracy on ASN-labelled routers (%d nodes):\n", total)
	fmt.Printf("  bdrmapIT alone:           %5.1f%%\n", pct(beforeOK, total))
	fmt.Printf("  bdrmapIT + hostname ASNs: %5.1f%%\n", pct(afterOK, total))
	fmt.Printf("decisions on incongruent hostnames: %d (used %d, rejected %d)\n",
		len(res.Decisions), used(res), len(res.Decisions)-used(res))
}

func used(res *bdrmapit.Result) int {
	n := 0
	for _, d := range res.Decisions {
		if d.Used {
			n++
		}
	}
	return n
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
